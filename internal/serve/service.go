package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/store"
)

// ErrQueueFull is returned by SubmitJob when the bounded job queue is at
// capacity — the service's backpressure signal (HTTP 503 + Retry-After).
var ErrQueueFull = errors.New("job queue full")

// ErrClosed is returned by SubmitJob after Close.
var ErrClosed = errors.New("service closed")

// ErrBusy is returned by Simulate when the sync path already has
// Workers+QueueDepth requests admitted — the sync counterpart of
// ErrQueueFull (HTTP 503), so a burst of distinct-spec sync requests
// cannot park unboundedly many goroutines on the execution semaphore.
var ErrBusy = errors.New("server busy: too many simulations in flight")

// ErrDraining is returned for work that would start a new computation while
// the service is shutting down. Cache and durable-store hits are still
// served — degraded mode reads, but does not compute (DESIGN.md §8).
var ErrDraining = errors.New("service draining: serving cached results only")

// ErrJobDeadline is the terminal error of a job whose Config.JobTimeout
// expired; it is not retried.
var ErrJobDeadline = errors.New("job deadline exceeded")

// Config sizes a Service.
type Config struct {
	// Workers bounds concurrently executing simulations — async queue
	// consumers, and a shared semaphore that sync requests also respect
	// (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds queued-but-not-running async jobs (default 64).
	QueueDepth int
	// CacheEntries bounds the result LRU (default 256).
	CacheEntries int
	// Parallel caps each job's trial-runner workers (default 1, so
	// cross-job concurrency — not intra-job — uses the cores; results are
	// identical either way by the runner contract).
	Parallel int
	// MaxJobs bounds retained job records (default 4096). Past the bound,
	// the oldest *terminal* (done/failed) records are evicted FIFO, so a
	// long-lived server's memory stays bounded; a 404 on a previously-done
	// job means "fetch the result by its hash instead".
	MaxJobs int
	// DataDir, when non-empty, makes the service crash-safe (DESIGN.md §8):
	// results persist to a content-addressed store under DataDir/store and
	// async jobs are journaled to DataDir/journal.jsonl. On Open the journal
	// is replayed — terminal jobs keep their IDs and interrupted jobs are
	// re-enqueued with completed trials prefilled and the last engine
	// checkpoint resumed. Empty (the default) keeps the service ephemeral.
	DataDir string
	// JobRetries is how many times a failed job execution is retried with
	// exponential backoff before the job turns terminally failed
	// (default 2; negative disables retry).
	JobRetries int
	// JobTimeout, when positive, bounds each job's wall-clock execution
	// (all attempts together); past it the job fails terminally with
	// ErrJobDeadline. Zero means no deadline.
	JobTimeout time.Duration
	// RetryBackoff is the first retry's delay, doubling per attempt
	// (default 100ms).
	RetryBackoff time.Duration
	// Logger receives the service's structured logs (job lifecycle at info,
	// spans at debug). Nil discards them — tests and embedders that do not
	// care stay quiet; radionet-serve installs a JSON handler at -log-level.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.Parallel <= 0 {
		c.Parallel = 1
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.JobRetries == 0 {
		c.JobRetries = 2
	} else if c.JobRetries < 0 {
		c.JobRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	return c
}

// JobState is the lifecycle of an async job.
type JobState string

// Job lifecycle states.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// job is the service-internal record; mutable fields are guarded by
// Service.mu.
type job struct {
	id   string
	spec Spec
	hash string

	state    JobState
	done     int
	total    int
	errMsg   string
	cacheHit bool

	// trace is the submitting request's trace ID (empty when the caller had
	// none); enqueuedAt feeds the queue-wait histogram and is zero for
	// cache-hit and journal-recovered jobs.
	trace      string
	enqueuedAt time.Time

	// Recovery state from the journal (nil/zero for fresh jobs): completed
	// trials to prefill and the checkpoint of the trial that was mid-flight.
	recTrials map[int]exp.Sample
	ckptTrial int
	ckpt      *exp.FloodCheckpoint
	recovered bool
}

// JobView is the externally visible snapshot of a job (the GET
// /v1/jobs/{id} body).
type JobView struct {
	ID          string   `json:"id"`
	SpecHash    string   `json:"spec_hash"`
	State       JobState `json:"state"`
	TrialsDone  int      `json:"trials_done"`
	TrialsTotal int      `json:"trials_total"`
	// CacheHit marks jobs satisfied from the cache without executing.
	CacheHit bool   `json:"cache_hit,omitempty"`
	Error    string `json:"error,omitempty"`
	// Result is the relative URL of the result once the job is done.
	Result string `json:"result,omitempty"`
	// Recovered marks jobs restored from the journal after a restart.
	Recovered bool `json:"recovered,omitempty"`
}

// Stats is the service-wide counter snapshot (GET /v1/stats).
type Stats struct {
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	CacheEntries int    `json:"cache_entries"`
	// Executions counts simulations actually run (cache misses that
	// computed); Coalesced counts requests served by piggybacking on an
	// in-flight identical execution.
	Executions uint64 `json:"executions"`
	Coalesced  uint64 `json:"coalesced"`
	// PrefixHits counts computations that resumed from cached prefix
	// snapshots (X-Cache: HIT-PREFIX); PrefixEpochsSaved totals the epochs
	// those resumes skipped, summed over trials (DESIGN.md §9).
	PrefixHits        uint64 `json:"prefix_hits,omitempty"`
	PrefixEpochsSaved uint64 `json:"prefix_epochs_saved,omitempty"`
	Jobs              int    `json:"jobs"`
	// InFlightJobs counts jobs currently executing; with QueueLen and Jobs
	// it is read under one lock acquisition, so the three are mutually
	// consistent (a job is never visible as both queued and running).
	InFlightJobs int `json:"in_flight_jobs"`
	QueueLen     int `json:"queue_len"`
	QueueCap     int `json:"queue_cap"`
	Workers      int `json:"workers"`
	// UptimeSeconds is the time since Open.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Durable reports whether a DataDir backs the service; the Store*
	// counters mirror the durable tier (store.Counters) when it does.
	Durable          bool   `json:"durable"`
	StoreHits        uint64 `json:"store_hits,omitempty"`
	StoreMisses      uint64 `json:"store_misses,omitempty"`
	StorePuts        uint64 `json:"store_puts,omitempty"`
	StoreQuarantined uint64 `json:"store_quarantined,omitempty"`
	StoreEntries     int    `json:"store_entries,omitempty"`
	// Snap* mirror the prefix-snapshot keyspace (DataDir/snap): puts are
	// publications, hits are probe finds, quarantined are corrupt entries
	// degraded to cold runs. SnapErrors counts failed publications
	// (advisory — the run proceeds).
	SnapHits        uint64 `json:"snap_hits,omitempty"`
	SnapMisses      uint64 `json:"snap_misses,omitempty"`
	SnapPuts        uint64 `json:"snap_puts,omitempty"`
	SnapQuarantined uint64 `json:"snap_quarantined,omitempty"`
	SnapEntries     int    `json:"snap_entries,omitempty"`
	SnapErrors      uint64 `json:"snap_errors,omitempty"`
	// RecoveredJobs / RecoveredTrials count journal-replay work at the last
	// Open: interrupted jobs re-enqueued and completed trials prefilled.
	RecoveredJobs   uint64 `json:"recovered_jobs,omitempty"`
	RecoveredTrials uint64 `json:"recovered_trials,omitempty"`
	// Retries counts job execution retry attempts; JournalErrors counts
	// non-fatal journal append failures (durability degraded, service up).
	Retries       uint64 `json:"retries,omitempty"`
	JournalErrors uint64 `json:"journal_errors,omitempty"`
	// Draining is true once shutdown began: reads are served, computation
	// is refused.
	Draining bool `json:"draining"`
}

// Service ties the pieces together: the LRU + durable store + singleflight
// group in front, the bounded queue and worker pool behind, and the job
// journal underneath. One Service instance backs the whole HTTP API.
type Service struct {
	cfg          Config
	cache        *Cache
	st           *store.Store // nil when ephemeral
	snaps        *store.Store // prefix-snapshot keyspace; nil when ephemeral
	jr           *journal     // nil when ephemeral
	sf           flightGroup
	pf           flightGroup   // prefix leaders, keyed by PrefixHash
	slots        chan struct{} // execution semaphore, capacity cfg.Workers
	queue        chan *job
	syncPending  atomic.Int64 // admitted non-cache-hit sync requests
	execs        atomic.Uint64
	coalesced    atomic.Uint64
	prefixHits   atomic.Uint64
	prefixEpochs atomic.Uint64
	snapErrs     atomic.Uint64
	retries      atomic.Uint64
	timeouts     atomic.Uint64
	journalErrs  atomic.Uint64
	recJobs      atomic.Uint64
	recTrials    atomic.Uint64
	draining     atomic.Bool
	killed       atomic.Bool

	log     *slog.Logger
	met     *metrics
	started time.Time

	mu       sync.Mutex
	jobs     map[string]*job
	jobOrder []string // insertion order, for bounded FIFO retention
	seq      int
	closed   bool
	wg       sync.WaitGroup

	// testHookExecuting, when non-nil, is called after an execution slot is
	// acquired and before the simulation runs — tests use it to hold
	// executions open deterministically.
	testHookExecuting func(sp Spec)
}

// New starts an ephemeral Service (no DataDir persistence errors are
// possible, so no error to return); use Open for a durable one.
func New(cfg Config) *Service {
	s, err := Open(cfg)
	if err != nil {
		// Only reachable with a DataDir that failed to open; callers who
		// set one should use Open and handle the error.
		panic(err)
	}
	return s
}

// Open starts a Service with cfg's workers running. With cfg.DataDir set it
// opens the durable store, replays and compacts the job journal, re-registers
// finished jobs, and re-enqueues interrupted ones before accepting traffic.
func Open(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:     cfg,
		cache:   NewCache(cfg.CacheEntries),
		slots:   make(chan struct{}, cfg.Workers),
		jobs:    make(map[string]*job),
		started: time.Now(),
	}
	s.log = cfg.Logger
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	// The metric registry's scrape-time closures read s; it must exist
	// before the durable layers below borrow instruments from it.
	s.met = newMetrics(s)
	var recovered []*recoveredJob
	if cfg.DataDir != "" {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: data dir: %w", err)
		}
		st, err := store.Open(filepath.Join(cfg.DataDir, "store"))
		if err != nil {
			return nil, err
		}
		// The snapshot keyspace gets its own store root (DataDir/snap) with
		// the same atomic-write + hash-verified-read + quarantine discipline
		// as results, but separate counters and no entanglement with the
		// result namespace.
		snaps, err := store.Open(filepath.Join(cfg.DataDir, "snap"))
		if err != nil {
			return nil, err
		}
		jr, jobs, maxSeq, err := openJournal(filepath.Join(cfg.DataDir, "journal.jsonl"))
		if err != nil {
			return nil, err
		}
		st.SetMetrics(s.met.storeMetrics(keyspaceResult))
		snaps.SetMetrics(s.met.storeMetrics(keyspaceSnap))
		jr.met = s.met.journalMetrics()
		s.st, s.snaps, s.jr, s.seq = st, snaps, jr, maxSeq
		recovered = jobs
	}
	interrupted := 0
	for _, r := range recovered {
		if r.state == JobQueued {
			interrupted++
		}
	}
	// The queue must absorb every re-enqueued job even when it exceeds
	// QueueDepth — recovery cannot drop work the journal promised.
	s.queue = make(chan *job, cfg.QueueDepth+interrupted)
	for _, r := range recovered {
		j := &job{
			id: r.id, spec: r.spec, hash: r.spec.Hash(),
			state: r.state, total: r.spec.Reps, errMsg: r.errMsg,
			trace: r.trace, recovered: true,
		}
		switch r.state {
		case JobDone:
			j.done = j.total
		case JobFailed:
			// Terminal failure: error preserved across the restart.
		default:
			j.state = JobQueued
			j.done = len(r.trials)
			j.recTrials = r.trials
			j.ckptTrial, j.ckpt = r.ckptIdx, r.ckpt
			s.recJobs.Add(1)
			s.recTrials.Add(uint64(len(r.trials)))
			s.queue <- j
			s.log.Info("job recovered", slog.String("job", j.id),
				slog.String("trace", j.trace), slog.Int("trials_prefilled", j.done))
		}
		s.mu.Lock()
		s.registerLocked(j)
		s.mu.Unlock()
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// SetFaults installs a chaos fault registry on the durable layers (the
// "store.get"/"store.put"/"serve.journal" sites). Call before serving
// traffic; test-only by convention.
func (s *Service) SetFaults(f *chaos.Faults) {
	if s.st != nil {
		s.st.SetFaults(f)
	}
	if s.jr != nil {
		s.jr.faults = f
	}
}

// Close stops accepting new work, fails queued-but-unstarted jobs in
// memory (the journal keeps them resumable for the next Open), waits for
// in-flight executions, and closes the journal. In-flight sync Simulate
// calls are unaffected.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.draining.Store(true)
	close(s.queue)
	s.wg.Wait()
	s.jr.close()
}

// Kill simulates kill -9 for the chaos suite: the journal is frozen (every
// later append fails, aborting checkpointed runs exactly the way a dead
// process would), in-flight grids are cancelled, and nothing is marked
// failed on disk — the data dir is left precisely as a crash would leave
// it, for the next Open to recover.
func (s *Service) Kill() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.draining.Store(true)
	s.killed.Store(true)
	s.jr.freeze()
	close(s.queue)
	s.wg.Wait()
	s.jr.close()
}

// CacheStatus classifies how a sync request was satisfied.
type CacheStatus string

// Simulate outcomes: served from the in-memory cache, from the durable
// store (populating the cache), computed fresh, or coalesced onto a
// concurrent identical execution.
const (
	StatusHit        CacheStatus = "hit"
	StatusDurableHit CacheStatus = "durable"
	StatusMiss       CacheStatus = "miss"
	StatusCoalesced  CacheStatus = "coalesced"
	// StatusPrefixHit marks a computation that resumed from cached
	// prefix snapshots instead of running every epoch cold (DESIGN.md §9).
	StatusPrefixHit CacheStatus = "prefix"
)

// Simulate is the sync path: canonicalize, consult the cache, then the
// durable store, otherwise execute exactly once across all concurrent
// identical requests. The returned bytes are the deterministic Result
// JSON; callers must not mutate them.
func (s *Service) Simulate(raw Spec) (data []byte, hash string, status CacheStatus, err error) {
	return s.simulate(context.Background(), raw)
}

// simulate is Simulate with the caller's context carried for trace
// propagation (spans; DESIGN.md §10). The context does NOT cancel the
// computation — SimulateCtx detaches it deliberately.
func (s *Service) simulate(ctx context.Context, raw Spec) (data []byte, hash string, status CacheStatus, err error) {
	sp, err := raw.Canonicalize()
	if err != nil {
		return nil, "", "", err
	}
	hash = sp.Hash()
	lookup := obs.StartSpan(ctx, s.log, "cache.lookup")
	if b, ok := s.cache.Get(hash); ok {
		lookup.SetAttr("tier", "memory")
		lookup.End()
		return b, hash, StatusHit, nil
	}
	if b, ok := s.storeGet(hash); ok {
		s.cache.Put(hash, b)
		lookup.SetAttr("tier", "durable")
		lookup.End()
		return b, hash, StatusDurableHit, nil
	}
	lookup.SetAttr("tier", "miss")
	lookup.End()
	// Degraded mode: once shutdown begins, reads above still work but new
	// computations are refused with a retryable signal.
	if s.draining.Load() {
		return nil, hash, "", ErrDraining
	}
	// Admission control for the sync path: cache hits above cost nothing,
	// but every admitted request below parks on the execution semaphore
	// (or a flight), so the count of them must be bounded like every other
	// server-side store.
	limit := int64(s.cfg.Workers + s.cfg.QueueDepth)
	if s.syncPending.Add(1) > limit {
		s.syncPending.Add(-1)
		return nil, hash, "", ErrBusy
	}
	defer s.syncPending.Add(-1)
	// fromCache/viaPrefix are written only when this caller is the executor
	// (the closure runs synchronously inside Do then), covering the race
	// where an identical in-flight execution completed between the Get
	// above and the flight registration: the response was really served
	// from cache and must not be labeled a miss.
	var fromCache, viaPrefix bool
	flight := obs.StartSpan(ctx, s.log, "flight")
	b, err, shared := s.sf.Do(hash, nil, func(report func(done, total int)) ([]byte, error) {
		eb, hit, via, eerr := s.execute(ctx, sp, hash, report)
		fromCache, viaPrefix = hit, via
		return eb, eerr
	})
	flight.SetAttr("shared", shared)
	flight.End()
	// Count coalescing before the error check so the counter means the
	// same thing ("waited on someone else's execution") on the sync and
	// async paths, failures included.
	if shared {
		s.coalesced.Add(1)
	}
	if err != nil {
		return nil, hash, "", err
	}
	switch {
	case shared:
		return b, hash, StatusCoalesced, nil
	case fromCache:
		return b, hash, StatusHit, nil
	case viaPrefix:
		return b, hash, StatusPrefixHit, nil
	default:
		return b, hash, StatusMiss, nil
	}
}

// SimulateCtx is Simulate bounded by ctx (the per-request deadline). On
// expiry it returns ctx's error; the underlying computation — shared with
// every coalesced waiter — is NOT abandoned: it finishes, lands in the
// cache and store, and a retried request becomes a cheap hit. Admission
// control bounds how many such detached computations can exist.
func (s *Service) SimulateCtx(ctx context.Context, raw Spec) (data []byte, hash string, status CacheStatus, err error) {
	if err := ctx.Err(); err != nil {
		return nil, "", "", err
	}
	type outcome struct {
		data   []byte
		hash   string
		status CacheStatus
		err    error
	}
	ch := make(chan outcome, 1)
	// WithoutCancel: the computation outlives the request deadline by design
	// (coalesced waiters and the cache collect it), but the trace ID still
	// flows so its spans stay attributable to the originating request.
	dctx := context.WithoutCancel(ctx)
	go func() {
		d, h, st, e := s.simulate(dctx, raw)
		ch <- outcome{d, h, st, e}
	}()
	select {
	case o := <-ch:
		return o.data, o.hash, o.status, o.err
	case <-ctx.Done():
		return nil, "", "", fmt.Errorf("%w (the computation continues; retry to collect the cached result)", ctx.Err())
	}
}

// storeGet reads the durable tier; errors (I/O, injected faults, corrupt
// entries) degrade to a miss — the caller recomputes.
func (s *Service) storeGet(hash string) ([]byte, bool) {
	if s.st == nil {
		return nil, false
	}
	b, ok, err := s.st.Get(hash)
	if err != nil || !ok {
		return nil, false
	}
	return b, true
}

// storePut writes the durable tier. A write failure is a real error: the
// service must not report a durable job done when its result is not on
// disk (the job layer retries).
func (s *Service) storePut(hash string, b []byte) error {
	if s.st == nil {
		return nil
	}
	return s.st.Put(hash, b)
}

// execute runs one simulation through the prefix-cache protocol and the
// worker semaphore, publishing the result bytes to the store and cache;
// fromCache reports that the result had already landed and nothing ran,
// viaPrefix that the computation resumed from prefix snapshots. Callers
// hold the singleflight slot for hash.
func (s *Service) execute(ctx context.Context, sp Spec, hash string, onTrial func(done, total int)) (b []byte, fromCache, viaPrefix bool, err error) {
	return s.runPrefixed(sp, func(plan *prefixPlan) ([]byte, bool, error) {
		return s.executeSlot(ctx, sp, hash, onTrial, plan)
	})
}

// executeSlot is the slot-holding half of execute: re-check the caches,
// then run with the prefix plan's resume snapshots (nil plan = cold).
func (s *Service) executeSlot(ctx context.Context, sp Spec, hash string, onTrial func(done, total int), plan *prefixPlan) (b []byte, fromCache bool, err error) {
	wait := obs.StartSpan(ctx, s.log, "slot.wait")
	s.slots <- struct{}{}
	wait.End()
	defer func() { <-s.slots }()
	// The result may have landed while this request waited in the queue or
	// for a slot (e.g. a sync request computed the same spec) — serve it.
	// peek, not Get: this internal re-check must not distort the stats.
	if b, ok := s.cache.peek(hash); ok {
		return b, true, nil
	}
	if b, ok := s.storeGet(hash); ok {
		s.cache.Put(hash, b)
		return b, true, nil
	}
	if hook := s.testHookExecuting; hook != nil {
		hook(sp)
	}
	s.execs.Add(1)
	o := ExecOptions{Parallel: s.cfg.Parallel, OnTrial: onTrial, OnProbe: s.onProbe}
	s.armPrefix(sp, plan, &o)
	run := obs.StartSpan(ctx, s.log, "execute")
	run.SetAttr("hash", hash)
	res, err := ExecuteWith(sp, o)
	run.End()
	if err != nil {
		return nil, false, err
	}
	b, err = res.JSON()
	if err != nil {
		return nil, false, err
	}
	put := obs.StartSpan(ctx, s.log, "store.put")
	err = s.storePut(hash, b)
	put.End()
	if err != nil {
		return nil, false, err
	}
	s.cache.Put(hash, b)
	return b, false, nil
}

// onProbe forwards engine probe samples (epoch boundaries + run ends) to
// the metric registry; armed on every execution.
func (s *Service) onProbe(trial int, smp *radio.ProbeSample) {
	s.met.observeProbe(smp)
}

// SubmitJob is the async path: canonicalize, register and journal a job,
// and either satisfy it from the cache immediately or enqueue it.
// ErrQueueFull signals backpressure; the caller should retry later or fall
// back to the sync endpoint.
func (s *Service) SubmitJob(raw Spec) (JobView, error) {
	return s.SubmitJobCtx(context.Background(), raw)
}

// SubmitJobCtx is SubmitJob with the caller's context: its trace ID is
// recorded on the job, journaled with the submit record, and attached to
// every log line the job's lifecycle emits — the async half of the
// trace-propagation contract (DESIGN.md §10).
func (s *Service) SubmitJobCtx(ctx context.Context, raw Spec) (JobView, error) {
	sp, err := raw.Canonicalize()
	if err != nil {
		return JobView{}, err
	}
	hash := sp.Hash()
	_, cached := s.cache.Get(hash)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobView{}, ErrClosed
	}
	s.seq++
	j := &job{
		id:    fmt.Sprintf("job-%d", s.seq),
		spec:  sp,
		hash:  hash,
		state: JobQueued,
		total: sp.Reps,
		trace: obs.TraceID(ctx),
	}
	if cached {
		j.state, j.done, j.cacheHit = JobDone, sp.Reps, true
		s.registerLocked(j)
		s.journalSubmit(j)
		s.journalAppend(journalRecord{Op: opDone, Job: j.id})
		return s.viewLocked(j), nil
	}
	j.enqueuedAt = time.Now()
	select {
	case s.queue <- j:
		s.registerLocked(j)
		s.journalSubmit(j)
		s.log.Debug("job queued", slog.String("job", j.id),
			slog.String("trace", j.trace), slog.String("hash", j.hash))
		return s.viewLocked(j), nil
	default:
		return JobView{}, ErrQueueFull
	}
}

// journalSubmit appends j's submit record. Journal append failures outside
// checkpoints are non-fatal (counted; the service keeps working with
// degraded durability) — only a checkpointed run must not outpace its
// journal, and that path aborts through the checkpoint hook instead.
func (s *Service) journalSubmit(j *job) {
	spec := j.spec
	s.journalAppend(journalRecord{Op: opSubmit, Job: j.id, Spec: &spec, Trace: j.trace})
}

func (s *Service) journalAppend(rec journalRecord) {
	if err := s.jr.append(rec); err != nil {
		s.journalErrs.Add(1)
	}
}

// registerLocked records j and evicts the oldest terminal records past
// cfg.MaxJobs; s.mu must be held. Non-terminal jobs are never evicted —
// they are already bounded by QueueDepth + Workers.
func (s *Service) registerLocked(j *job) {
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	if len(s.jobs) <= s.cfg.MaxJobs {
		return
	}
	kept := s.jobOrder[:0] // in-place filter; kept never outruns the read index
	for _, id := range s.jobOrder {
		old, ok := s.jobs[id]
		if !ok {
			continue
		}
		if len(s.jobs) > s.cfg.MaxJobs && old != j && (old.state == JobDone || old.state == JobFailed) {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.jobOrder = kept
}

// worker drains the queue until Close.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		// After Close, fail queued-but-unstarted jobs in memory instead of
		// draining them: shutdown must be bounded by in-flight work only,
		// not by a full queue of heavy simulations (a supervisor would
		// SIGKILL long before a 64-deep queue drains). No failed record is
		// journaled — on disk they stay interrupted, so the next Open
		// resumes them.
		if s.isClosed() {
			s.updateJob(j, func(j *job) { j.state, j.errMsg = JobFailed, ErrClosed.Error() })
			continue
		}
		s.runJob(j)
	}
}

// runJob is one job's full lifecycle: attempts with exponential backoff up
// to cfg.JobRetries retries, a terminal deadline, and journaled completion.
func (s *Service) runJob(j *job) {
	if !j.enqueuedAt.IsZero() {
		s.met.queueWait.ObserveSince(j.enqueuedAt)
	}
	// The job carries its submitting request's trace ID across the queue;
	// rebuild a context from it so spans and logs below stay attributable.
	ctx := obs.WithTrace(context.Background(), j.trace)
	t0 := time.Now()
	s.updateJob(j, func(j *job) { j.state = JobRunning })
	var deadline time.Time
	if s.cfg.JobTimeout > 0 {
		deadline = time.Now().Add(s.cfg.JobTimeout)
	}
	var lastErr error
	for attempt := 0; attempt <= s.cfg.JobRetries; attempt++ {
		if attempt > 0 {
			s.retries.Add(1)
			time.Sleep(s.cfg.RetryBackoff << (attempt - 1))
		}
		err := s.attemptJob(ctx, j, deadline)
		if err == nil {
			s.journalAppend(journalRecord{Op: opDone, Job: j.id})
			s.log.Info("job done", slog.String("job", j.id),
				slog.String("trace", j.trace), slog.String("hash", j.hash),
				slog.Int("attempts", attempt+1), slog.Duration("dur", time.Since(t0)))
			return
		}
		lastErr = err
		if errors.Is(err, errJournalFrozen) || s.killed.Load() {
			// Simulated crash: leave the job exactly as the journal has it;
			// the next Open recovers it.
			return
		}
		if errors.Is(err, ErrJobDeadline) || errors.Is(err, ErrBadSpec) {
			break // terminal: retrying cannot help
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			lastErr = fmt.Errorf("%w: %w", ErrJobDeadline, err)
			break
		}
	}
	if errors.Is(lastErr, ErrJobDeadline) {
		s.timeouts.Add(1)
	}
	s.updateJob(j, func(j *job) { j.state, j.errMsg = JobFailed, lastErr.Error() })
	s.journalAppend(journalRecord{Op: opFailed, Job: j.id, Error: lastErr.Error()})
	s.log.Warn("job failed", slog.String("job", j.id),
		slog.String("trace", j.trace), slog.String("hash", j.hash),
		slog.Duration("dur", time.Since(t0)), slog.String("error", lastErr.Error()))
}

// attemptJob runs one execution attempt through the singleflight group,
// updating the job on success.
func (s *Service) attemptJob(ctx context.Context, j *job, deadline time.Time) error {
	// The progress listener is attached whether this worker executes or
	// coalesces onto an in-flight identical execution, so polling clients
	// see trial progress either way. Completion counts arrive from
	// concurrent runner goroutines (and the coalescing catch-up replay)
	// out of order, so the write is kept monotone.
	onProgress := func(done, total int) {
		s.updateJob(j, func(j *job) {
			if done > j.done {
				j.done = done
			}
			j.total = total
		})
	}
	var fromCache bool
	_, err, shared := s.sf.Do(j.hash, onProgress, func(report func(done, total int)) ([]byte, error) {
		b, hit, _, eerr := s.executeJob(ctx, j, deadline, report)
		fromCache = hit
		return b, eerr
	})
	if shared {
		s.coalesced.Add(1)
	}
	if err != nil {
		return err
	}
	s.updateJob(j, func(j *job) {
		j.state, j.done = JobDone, j.total
		// The result may have landed (via a sync request for the same
		// spec) while this job sat in the queue; keep CacheHit honest.
		j.cacheHit = j.cacheHit || fromCache
	})
	return nil
}

// executeJob is execute with the job's crash-safety hooks attached:
// journaled trial samples and flood checkpoints, recovered-trial prefill,
// checkpoint resume, and cancellation (kill, deadline). Jobs ride the
// prefix cache too — sweeps submitted async warm and consume the same
// snapshot keyspace as sync requests.
func (s *Service) executeJob(ctx context.Context, j *job, deadline time.Time, report func(done, total int)) ([]byte, bool, bool, error) {
	return s.runPrefixed(j.spec, func(plan *prefixPlan) ([]byte, bool, error) {
		return s.executeJobSlot(ctx, j, deadline, report, plan)
	})
}

func (s *Service) executeJobSlot(ctx context.Context, j *job, deadline time.Time, report func(done, total int), plan *prefixPlan) ([]byte, bool, error) {
	wait := obs.StartSpan(ctx, s.log, "slot.wait")
	s.slots <- struct{}{}
	wait.End()
	defer func() { <-s.slots }()
	if b, ok := s.cache.peek(j.hash); ok {
		return b, true, nil
	}
	if b, ok := s.storeGet(j.hash); ok {
		s.cache.Put(j.hash, b)
		return b, true, nil
	}
	if hook := s.testHookExecuting; hook != nil {
		hook(j.spec)
	}
	s.execs.Add(1)
	o := ExecOptions{
		Parallel:  s.cfg.Parallel,
		OnTrial:   report,
		OnProbe:   s.onProbe,
		Prefilled: j.recTrials,
		Cancelled: func() bool {
			return s.killed.Load() || (!deadline.IsZero() && time.Now().After(deadline))
		},
	}
	s.armPrefix(j.spec, plan, &o)
	if s.jr != nil {
		o.OnSample = func(i int, smp exp.Sample) {
			sample := smp
			s.journalAppend(journalRecord{Op: opTrial, Job: j.id, Index: i, Sample: &sample})
		}
		o.OnCheckpoint = func(trial int, cp *exp.FloodCheckpoint) error {
			// A checkpointed run must not outpace its journal: the append
			// error aborts the run (and the chaos suite injects worker
			// death here).
			return s.jr.append(journalRecord{Op: opCkpt, Job: j.id, Index: trial, Ckpt: cp})
		}
		if j.ckpt != nil {
			o.ResumeTrial, o.Resume = j.ckptTrial, j.ckpt
		}
	}
	run := obs.StartSpan(ctx, s.log, "execute")
	run.SetAttr("job", j.id)
	run.SetAttr("hash", j.hash)
	res, err := ExecuteWith(j.spec, o)
	run.End()
	if err != nil {
		if errors.Is(err, exp.ErrCancelled) {
			if s.killed.Load() {
				return nil, false, errJournalFrozen
			}
			return nil, false, fmt.Errorf("%w after %v", ErrJobDeadline, s.cfg.JobTimeout)
		}
		return nil, false, err
	}
	b, err := res.JSON()
	if err != nil {
		return nil, false, err
	}
	put := obs.StartSpan(ctx, s.log, "store.put")
	err = s.storePut(j.hash, b)
	put.End()
	if err != nil {
		return nil, false, err
	}
	s.cache.Put(j.hash, b)
	return b, false, nil
}

// updateJob applies fn to j under the service lock.
func (s *Service) updateJob(j *job, fn func(*job)) {
	s.mu.Lock()
	fn(j)
	s.mu.Unlock()
}

// isClosed reports whether Close has begun.
func (s *Service) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Job returns the snapshot of the job with the given ID.
func (s *Service) Job(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return s.viewLocked(j), true
}

// viewLocked snapshots j; s.mu must be held.
func (s *Service) viewLocked(j *job) JobView {
	v := JobView{
		ID:          j.id,
		SpecHash:    j.hash,
		State:       j.state,
		TrialsDone:  j.done,
		TrialsTotal: j.total,
		CacheHit:    j.cacheHit,
		Error:       j.errMsg,
		Recovered:   j.recovered,
	}
	if j.state == JobDone {
		v.Result = "/v1/results/" + j.hash
	}
	return v
}

// ResultByHash serves the content-addressed endpoint: the in-memory cache
// first, then the durable store (read-through — a store hit repopulates
// the cache). A miss means "not computed yet, or evicted and not durable —
// request it again".
func (s *Service) ResultByHash(hash string) ([]byte, bool) {
	if b, ok := s.cache.Get(hash); ok {
		return b, true
	}
	if b, ok := s.storeGet(hash); ok {
		s.cache.Put(hash, b)
		return b, true
	}
	return nil, false
}

// runningLocked counts jobs currently executing; s.mu must be held.
func (s *Service) runningLocked() int {
	n := 0
	for _, j := range s.jobs {
		if j.state == JobRunning {
			n++
		}
	}
	return n
}

// Registry exposes the service's metric registry (the GET /metrics body;
// tests and the loadgen scrape it through WritePrometheus).
func (s *Service) Registry() *obs.Registry { return s.met.reg }

// Stats snapshots the service counters. The job-facing fields (Jobs,
// InFlightJobs, QueueLen) are read under a single s.mu acquisition so the
// snapshot is mutually consistent — a job transitioning queued→running
// between field reads cannot be counted in both.
func (s *Service) Stats() Stats {
	hits, misses := s.cache.Counters()
	s.mu.Lock()
	jobs := len(s.jobs)
	inFlight := s.runningLocked()
	queueLen := len(s.queue)
	s.mu.Unlock()
	st := Stats{
		CacheHits:         hits,
		CacheMisses:       misses,
		CacheEntries:      s.cache.Len(),
		Executions:        s.execs.Load(),
		Coalesced:         s.coalesced.Load(),
		PrefixHits:        s.prefixHits.Load(),
		PrefixEpochsSaved: s.prefixEpochs.Load(),
		Jobs:              jobs,
		InFlightJobs:      inFlight,
		QueueLen:          queueLen,
		QueueCap:          cap(s.queue),
		Workers:           s.cfg.Workers,
		UptimeSeconds:     time.Since(s.started).Seconds(),
		RecoveredJobs:     s.recJobs.Load(),
		RecoveredTrials:   s.recTrials.Load(),
		Retries:           s.retries.Load(),
		JournalErrors:     s.journalErrs.Load(),
		Draining:          s.draining.Load(),
	}
	if s.st != nil {
		st.Durable = true
		c := s.st.Counters()
		st.StoreHits, st.StoreMisses = c.Hits, c.Misses
		st.StorePuts, st.StoreQuarantined = c.Puts, c.Quarantined
		if n, err := s.st.Len(); err == nil {
			st.StoreEntries = n
		}
	}
	if s.snaps != nil {
		c := s.snaps.Counters()
		st.SnapHits, st.SnapMisses = c.Hits, c.Misses
		st.SnapPuts, st.SnapQuarantined = c.Puts, c.Quarantined
		st.SnapErrors = s.snapErrs.Load()
		if n, err := s.snaps.Len(); err == nil {
			st.SnapEntries = n
		}
	}
	return st
}
