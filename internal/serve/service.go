package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrQueueFull is returned by SubmitJob when the bounded job queue is at
// capacity — the service's backpressure signal (HTTP 429).
var ErrQueueFull = errors.New("job queue full")

// ErrClosed is returned by SubmitJob after Close.
var ErrClosed = errors.New("service closed")

// ErrBusy is returned by Simulate when the sync path already has
// Workers+QueueDepth requests admitted — the sync counterpart of
// ErrQueueFull (HTTP 503), so a burst of distinct-spec sync requests
// cannot park unboundedly many goroutines on the execution semaphore.
var ErrBusy = errors.New("server busy: too many simulations in flight")

// Config sizes a Service.
type Config struct {
	// Workers bounds concurrently executing simulations — async queue
	// consumers, and a shared semaphore that sync requests also respect
	// (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds queued-but-not-running async jobs (default 64).
	QueueDepth int
	// CacheEntries bounds the result LRU (default 256).
	CacheEntries int
	// Parallel caps each job's trial-runner workers (default 1, so
	// cross-job concurrency — not intra-job — uses the cores; results are
	// identical either way by the runner contract).
	Parallel int
	// MaxJobs bounds retained job records (default 4096). Past the bound,
	// the oldest *terminal* (done/failed) records are evicted FIFO, so a
	// long-lived server's memory stays bounded; a 404 on a previously-done
	// job means "fetch the result by its hash instead".
	MaxJobs int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.Parallel <= 0 {
		c.Parallel = 1
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	return c
}

// JobState is the lifecycle of an async job.
type JobState string

// Job lifecycle states.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// job is the service-internal record; mutable fields are guarded by
// Service.mu.
type job struct {
	id   string
	spec Spec
	hash string

	state    JobState
	done     int
	total    int
	errMsg   string
	cacheHit bool
}

// JobView is the externally visible snapshot of a job (the GET
// /v1/jobs/{id} body).
type JobView struct {
	ID          string   `json:"id"`
	SpecHash    string   `json:"spec_hash"`
	State       JobState `json:"state"`
	TrialsDone  int      `json:"trials_done"`
	TrialsTotal int      `json:"trials_total"`
	// CacheHit marks jobs satisfied from the cache without executing.
	CacheHit bool   `json:"cache_hit,omitempty"`
	Error    string `json:"error,omitempty"`
	// Result is the relative URL of the result once the job is done.
	Result string `json:"result,omitempty"`
}

// Stats is the service-wide counter snapshot (GET /v1/stats).
type Stats struct {
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	CacheEntries int    `json:"cache_entries"`
	// Executions counts simulations actually run (cache misses that
	// computed); Coalesced counts requests served by piggybacking on an
	// in-flight identical execution.
	Executions uint64 `json:"executions"`
	Coalesced  uint64 `json:"coalesced"`
	Jobs       int    `json:"jobs"`
	QueueLen   int    `json:"queue_len"`
	QueueCap   int    `json:"queue_cap"`
	Workers    int    `json:"workers"`
}

// Service ties the pieces together: the result cache and singleflight
// group in front, the bounded queue and worker pool behind. One Service
// instance backs the whole HTTP API.
type Service struct {
	cfg         Config
	cache       *Cache
	sf          flightGroup
	slots       chan struct{} // execution semaphore, capacity cfg.Workers
	queue       chan *job
	syncPending atomic.Int64 // admitted non-cache-hit sync requests
	execs       atomic.Uint64
	coalesced   atomic.Uint64

	mu       sync.Mutex
	jobs     map[string]*job
	jobOrder []string // insertion order, for bounded FIFO retention
	seq      int
	closed   bool
	wg       sync.WaitGroup

	// testHookExecuting, when non-nil, is called after an execution slot is
	// acquired and before the simulation runs — tests use it to hold
	// executions open deterministically.
	testHookExecuting func(sp Spec)
}

// New starts a Service with cfg's workers running.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:   cfg,
		cache: NewCache(cfg.CacheEntries),
		slots: make(chan struct{}, cfg.Workers),
		queue: make(chan *job, cfg.QueueDepth),
		jobs:  make(map[string]*job),
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops accepting jobs, drains the queue, and waits for workers.
// In-flight sync Simulate calls are unaffected.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
}

// CacheStatus classifies how a sync request was satisfied.
type CacheStatus string

// Simulate outcomes: served from cache, computed fresh, or coalesced onto
// a concurrent identical execution.
const (
	StatusHit       CacheStatus = "hit"
	StatusMiss      CacheStatus = "miss"
	StatusCoalesced CacheStatus = "coalesced"
)

// Simulate is the sync path: canonicalize, consult the cache, otherwise
// execute exactly once across all concurrent identical requests. The
// returned bytes are the deterministic Result JSON; callers must not
// mutate them.
func (s *Service) Simulate(raw Spec) (data []byte, hash string, status CacheStatus, err error) {
	sp, err := raw.Canonicalize()
	if err != nil {
		return nil, "", "", err
	}
	hash = sp.Hash()
	if b, ok := s.cache.Get(hash); ok {
		return b, hash, StatusHit, nil
	}
	// Admission control for the sync path: cache hits above cost nothing,
	// but every admitted request below parks on the execution semaphore
	// (or a flight), so the count of them must be bounded like every other
	// server-side store.
	limit := int64(s.cfg.Workers + s.cfg.QueueDepth)
	if s.syncPending.Add(1) > limit {
		s.syncPending.Add(-1)
		return nil, hash, "", ErrBusy
	}
	defer s.syncPending.Add(-1)
	// fromCache is written only when this caller is the executor (the
	// closure runs synchronously inside Do then), covering the race where
	// an identical in-flight execution completed between the Get above and
	// the flight registration: the response was really served from cache
	// and must not be labeled a miss.
	var fromCache bool
	b, err, shared := s.sf.Do(hash, nil, func(report func(done, total int)) ([]byte, error) {
		eb, hit, eerr := s.execute(sp, hash, report)
		fromCache = hit
		return eb, eerr
	})
	// Count coalescing before the error check so the counter means the
	// same thing ("waited on someone else's execution") on the sync and
	// async paths, failures included.
	if shared {
		s.coalesced.Add(1)
	}
	if err != nil {
		return nil, hash, "", err
	}
	switch {
	case shared:
		return b, hash, StatusCoalesced, nil
	case fromCache:
		return b, hash, StatusHit, nil
	default:
		return b, hash, StatusMiss, nil
	}
}

// execute runs one simulation under the worker semaphore and publishes the
// result bytes to the cache; fromCache reports that the result had already
// landed and nothing ran. Callers hold the singleflight slot for hash.
func (s *Service) execute(sp Spec, hash string, onTrial func(done, total int)) (b []byte, fromCache bool, err error) {
	s.slots <- struct{}{}
	defer func() { <-s.slots }()
	// The result may have landed while this request waited in the queue or
	// for a slot (e.g. a sync request computed the same spec) — serve it.
	// peek, not Get: this internal re-check must not distort the stats.
	if b, ok := s.cache.peek(hash); ok {
		return b, true, nil
	}
	if hook := s.testHookExecuting; hook != nil {
		hook(sp)
	}
	s.execs.Add(1)
	res, err := Execute(sp, s.cfg.Parallel, onTrial)
	if err != nil {
		return nil, false, err
	}
	b, err = res.JSON()
	if err != nil {
		return nil, false, err
	}
	s.cache.Put(hash, b)
	return b, false, nil
}

// SubmitJob is the async path: canonicalize, register a job, and either
// satisfy it from the cache immediately or enqueue it. ErrQueueFull
// signals backpressure; the caller should retry later or fall back to the
// sync endpoint.
func (s *Service) SubmitJob(raw Spec) (JobView, error) {
	sp, err := raw.Canonicalize()
	if err != nil {
		return JobView{}, err
	}
	hash := sp.Hash()
	_, cached := s.cache.Get(hash)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobView{}, ErrClosed
	}
	s.seq++
	j := &job{
		id:    fmt.Sprintf("job-%d", s.seq),
		spec:  sp,
		hash:  hash,
		state: JobQueued,
		total: sp.Reps,
	}
	if cached {
		j.state, j.done, j.cacheHit = JobDone, sp.Reps, true
		s.registerLocked(j)
		return s.viewLocked(j), nil
	}
	select {
	case s.queue <- j:
		s.registerLocked(j)
		return s.viewLocked(j), nil
	default:
		return JobView{}, ErrQueueFull
	}
}

// registerLocked records j and evicts the oldest terminal records past
// cfg.MaxJobs; s.mu must be held. Non-terminal jobs are never evicted —
// they are already bounded by QueueDepth + Workers.
func (s *Service) registerLocked(j *job) {
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	if len(s.jobs) <= s.cfg.MaxJobs {
		return
	}
	kept := s.jobOrder[:0] // in-place filter; kept never outruns the read index
	for _, id := range s.jobOrder {
		old, ok := s.jobs[id]
		if !ok {
			continue
		}
		if len(s.jobs) > s.cfg.MaxJobs && old != j && (old.state == JobDone || old.state == JobFailed) {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.jobOrder = kept
}

// worker drains the queue until Close.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		// After Close, fail queued-but-unstarted jobs instead of draining
		// them: shutdown must be bounded by in-flight work only, not by a
		// full queue of heavy simulations (a supervisor would SIGKILL long
		// before a 64-deep queue drains).
		if s.isClosed() {
			s.updateJob(j, func(j *job) { j.state, j.errMsg = JobFailed, ErrClosed.Error() })
			continue
		}
		s.updateJob(j, func(j *job) { j.state = JobRunning })
		// The progress listener is attached whether this worker executes or
		// coalesces onto an in-flight identical execution, so polling
		// clients see trial progress either way. Completion counts arrive
		// from concurrent runner goroutines (and the coalescing catch-up
		// replay) out of order, so the write is kept monotone.
		onProgress := func(done, total int) {
			s.updateJob(j, func(j *job) {
				if done > j.done {
					j.done = done
				}
				j.total = total
			})
		}
		var fromCache bool
		_, err, shared := s.sf.Do(j.hash, onProgress, func(report func(done, total int)) ([]byte, error) {
			b, hit, err := s.execute(j.spec, j.hash, report)
			fromCache = hit
			return b, err
		})
		if shared {
			s.coalesced.Add(1)
		}
		s.updateJob(j, func(j *job) {
			if err != nil {
				j.state, j.errMsg = JobFailed, err.Error()
				return
			}
			j.state, j.done = JobDone, j.total
			// The result may have landed (via a sync request for the same
			// spec) while this job sat in the queue; keep CacheHit honest.
			j.cacheHit = j.cacheHit || fromCache
		})
	}
}

// updateJob applies fn to j under the service lock.
func (s *Service) updateJob(j *job, fn func(*job)) {
	s.mu.Lock()
	fn(j)
	s.mu.Unlock()
}

// isClosed reports whether Close has begun.
func (s *Service) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Job returns the snapshot of the job with the given ID.
func (s *Service) Job(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return s.viewLocked(j), true
}

// viewLocked snapshots j; s.mu must be held.
func (s *Service) viewLocked(j *job) JobView {
	v := JobView{
		ID:          j.id,
		SpecHash:    j.hash,
		State:       j.state,
		TrialsDone:  j.done,
		TrialsTotal: j.total,
		CacheHit:    j.cacheHit,
		Error:       j.errMsg,
	}
	if j.state == JobDone {
		v.Result = "/v1/results/" + j.hash
	}
	return v
}

// ResultByHash serves the content-addressed endpoint straight from the
// cache. A miss means "not computed yet, or evicted — request it again".
func (s *Service) ResultByHash(hash string) ([]byte, bool) {
	return s.cache.Get(hash)
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	hits, misses := s.cache.Counters()
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	return Stats{
		CacheHits:    hits,
		CacheMisses:  misses,
		CacheEntries: s.cache.Len(),
		Executions:   s.execs.Load(),
		Coalesced:    s.coalesced.Load(),
		Jobs:         jobs,
		QueueLen:     len(s.queue),
		QueueCap:     cap(s.queue),
		Workers:      s.cfg.Workers,
	}
}
