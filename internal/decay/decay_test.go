package decay

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/xrand"
)

func TestStepsPerIteration(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11},
	}
	for _, tc := range cases {
		if got := StepsPerIteration(tc.n); got != tc.want {
			t.Errorf("StepsPerIteration(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// fixedCoin returns a scripted sequence of coin results.
type fixedCoin struct {
	results []bool
	i       int
}

func (f *fixedCoin) Bernoulli(p float64) bool {
	if f.i >= len(f.results) {
		return false
	}
	r := f.results[f.i]
	f.i++
	return r
}

func TestPhaseLen(t *testing.T) {
	p := NewPhase(16, 5, true, "m", &fixedCoin{})
	if p.Len() != 4*5 {
		t.Fatalf("Len = %d, want 20", p.Len())
	}
	// iterations clamp to >= 1
	p2 := NewPhase(16, 0, false, nil, &fixedCoin{})
	if p2.Len() != 4 {
		t.Fatalf("Len = %d, want 4", p2.Len())
	}
}

func TestPhaseInactiveNeverTransmits(t *testing.T) {
	p := NewPhase(8, 3, false, nil, &fixedCoin{results: []bool{true, true, true}})
	for s := 0; s < p.Len(); s++ {
		if p.Act(s).Transmit {
			t.Fatal("inactive phase transmitted")
		}
	}
}

func TestPhaseActiveTransmitsOnHeads(t *testing.T) {
	p := NewPhase(8, 1, true, "payload", &fixedCoin{results: []bool{true, false, true}})
	a := p.Act(0)
	if !a.Transmit || a.Msg != "payload" {
		t.Fatalf("step 0: %+v", a)
	}
	if p.Act(1).Transmit {
		t.Fatal("step 1 should listen")
	}
	if !p.Act(2).Transmit {
		t.Fatal("step 2 should transmit")
	}
}

func TestPhaseHeardBookkeeping(t *testing.T) {
	p := NewPhase(8, 1, false, nil, &fixedCoin{})
	if _, ok := p.Heard(); ok {
		t.Fatal("nothing heard yet")
	}
	p.Deliver(0, nil) // silence does not count
	p.Deliver(1, "first")
	p.Deliver(2, "second")
	msg, ok := p.Heard()
	if !ok || msg != "first" {
		t.Fatalf("Heard = %v %v", msg, ok)
	}
	if p.HeardCount() != 2 {
		t.Fatalf("HeardCount = %d", p.HeardCount())
	}
}

// runDecay executes amplified Decay on g with the given sender set and
// returns, per node, whether it heard anything.
func runDecay(t *testing.T, g *graph.Graph, senders map[int]bool, iterations int, seed uint64) []bool {
	t.Helper()
	nodes := make([]*Node, g.N())
	factory := func(info radio.NodeInfo) radio.Protocol {
		nodes[info.Index] = NewNode(info, iterations, senders[info.Index], info.Index)
		return nodes[info.Index]
	}
	res, err := radio.Run(g, factory, radio.Options{MaxSteps: 100000, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone {
		t.Fatal("decay did not terminate")
	}
	heard := make([]bool, g.N())
	for v, n := range nodes {
		_, heard[v] = n.Heard()
	}
	return heard
}

// TestClaim10SingleSender: one sender on a star — every leaf hears whp.
func TestClaim10SingleSender(t *testing.T) {
	g := gen.Star(32)
	heard := runDecay(t, g, map[int]bool{0: true}, 10, 1)
	for v := 1; v < g.N(); v++ {
		if !heard[v] {
			t.Fatalf("leaf %d heard nothing from single sender", v)
		}
	}
}

// TestClaim10DenseSenders: the hard case for Decay — all leaves of a star
// transmit and the center must still hear one whp thanks to the probability
// sweep (some step has ~1 expected transmitter).
func TestClaim10DenseSenders(t *testing.T) {
	g := gen.Star(64)
	senders := map[int]bool{}
	for v := 1; v < g.N(); v++ {
		senders[v] = true
	}
	failures := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		heard := runDecay(t, g, senders, 12, uint64(100+trial))
		if !heard[0] {
			failures++
		}
	}
	if failures > 0 {
		t.Fatalf("center failed to hear in %d/%d trials with amplified decay", failures, trials)
	}
}

// TestClaim10Clique: every non-sender in a clique with k senders hears, for
// k across the whole sweep range.
func TestClaim10Clique(t *testing.T) {
	for _, k := range []int{1, 3, 10, 40} {
		g := gen.Clique(48)
		senders := map[int]bool{}
		for v := 0; v < k; v++ {
			senders[v] = true
		}
		heard := runDecay(t, g, senders, 12, uint64(7*k+1))
		for v := k; v < g.N(); v++ {
			if !heard[v] {
				t.Fatalf("k=%d: node %d heard nothing", k, v)
			}
		}
	}
}

// TestSendersDetectEachOther: senders listen when not transmitting, so two
// adjacent senders hear each other whp over enough iterations (needed by
// Radio MIS marked-neighbor detection).
func TestSendersDetectEachOther(t *testing.T) {
	g := gen.Path(2)
	misses := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		// With n=2 each iteration is a single step with transmit prob 1/2;
		// 60 iterations drive the per-trial miss probability below 1e-7.
		heard := runDecay(t, g, map[int]bool{0: true, 1: true}, 60, uint64(trial))
		if !heard[0] || !heard[1] {
			misses++
		}
	}
	if misses > 0 {
		t.Fatalf("adjacent senders failed to detect each other in %d/%d trials", misses, trials)
	}
}

// TestNoSenderSilence: with an empty sender set nothing is ever heard.
func TestNoSenderSilence(t *testing.T) {
	g := gen.Clique(16)
	heard := runDecay(t, g, nil, 5, 3)
	for v, h := range heard {
		if h {
			t.Fatalf("node %d heard a ghost transmission", v)
		}
	}
}

// TestNonNeighborsOfSendersHearNothing: Claim 10 promises delivery only to
// neighbors of S; nodes at distance 2 must stay silent within one block.
func TestNonNeighborsOfSendersHearNothing(t *testing.T) {
	g := gen.Path(5) // 0-1-2-3-4, sender {0}
	heard := runDecay(t, g, map[int]bool{0: true}, 10, 9)
	if !heard[1] {
		t.Fatal("direct neighbor should hear")
	}
	for v := 2; v <= 4; v++ {
		if heard[v] {
			t.Fatalf("node %d at distance ≥2 heard", v)
		}
	}
}

// TestDecaySuccessRateSingleIteration verifies the Ω(1) per-iteration
// success probability underlying Claim 10 on a moderately dense instance.
func TestDecaySuccessRateSingleIteration(t *testing.T) {
	g := gen.Star(33)
	senders := map[int]bool{}
	for v := 1; v < g.N(); v++ {
		senders[v] = true
	}
	hits := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		heard := runDecay(t, g, senders, 1, uint64(trial))
		if heard[0] {
			hits++
		}
	}
	rate := float64(hits) / trials
	if rate < 0.2 {
		t.Fatalf("single-iteration decay success rate %v, want Ω(1) (≥0.2)", rate)
	}
}

func TestNodeActAfterDoneListens(t *testing.T) {
	info := radio.NodeInfo{N: 4, RNG: xrand.New(1)}
	n := NewNode(info, 1, true, "m")
	for s := 0; s < n.phase.Len(); s++ {
		n.Act(s)
		n.Deliver(s, nil)
	}
	if !n.Done() {
		t.Fatal("node should be done")
	}
	if n.Act(99).Transmit {
		t.Fatal("done node must not transmit")
	}
}
