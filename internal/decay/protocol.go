package decay

import "repro/internal/radio"

// Node is a standalone radio.Protocol that runs one amplified Decay block
// and then halts. It exists so the Decay primitive can be tested and
// benchmarked directly against Claim 10, and serves as the simplest example
// of phase-structured protocol code.
type Node struct {
	phase *Phase
	step  int
	done  bool
}

var _ radio.Protocol = (*Node)(nil)

// NewNode builds a protocol node running `iterations` Decay iterations.
// Senders (active=true) transmit msg; all nodes record what they hear.
func NewNode(info radio.NodeInfo, iterations int, active bool, msg radio.Message) *Node {
	return &Node{phase: NewPhase(info.N, iterations, active, msg, info.RNG)}
}

// Act implements radio.Protocol.
func (d *Node) Act(step int) radio.Action {
	if d.step >= d.phase.Len() {
		d.done = true
		return radio.Listen()
	}
	return d.phase.Act(d.step)
}

// Deliver implements radio.Protocol.
func (d *Node) Deliver(step int, msg radio.Message) {
	if d.step < d.phase.Len() {
		d.phase.Deliver(d.step, msg)
	}
	d.step++
	if d.step >= d.phase.Len() {
		d.done = true
	}
}

// Done implements radio.Protocol.
func (d *Node) Done() bool { return d.done }

// Heard reports the phase outcome after the run.
func (d *Node) Heard() (radio.Message, bool) { return d.phase.Heard() }

// HeardCount returns the number of receptions.
func (d *Node) HeardCount() int { return d.phase.HeardCount() }
