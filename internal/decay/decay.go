// Package decay implements the classic Decay protocol of Bar-Yehuda,
// Goldreich and Itai (Algorithm 5 of the paper) as a reusable sub-phase for
// larger radio protocols, together with its amplified form (Claim 10):
// O(log n) iterations of Decay performed by a sender set S inform every node
// with a neighbor in S with high probability.
//
// One Decay iteration lasts ⌈log₂ n⌉ time-steps; in step i (1-based) each
// active sender transmits its message with probability 2^-i. A participant
// listens whenever it does not transmit, so senders also detect other nearby
// senders — the property Radio MIS relies on to check for marked neighbors.
package decay

import (
	"math"

	"repro/internal/radio"
)

// StepsPerIteration returns the length of a single Decay iteration for a
// network-size estimate n: ⌈log₂ n⌉, minimum 1.
func StepsPerIteration(n int) int {
	if n <= 2 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// Phase is one amplified Decay block embedded in a larger protocol. The
// owner forwards local step indices 0..Len()-1 to Act/Deliver. A Phase is
// single-use.
type Phase struct {
	stepsPerIter int
	iterations   int
	active       bool
	msg          radio.Message
	rng          coin

	heardFirst radio.Message
	heardCount int
}

// coin abstracts the only randomness Decay needs, easing deterministic tests.
type coin interface {
	Bernoulli(p float64) bool
}

// NewPhase creates a Decay block of `iterations` iterations for network-size
// estimate n. If active, the node participates as a sender with message msg;
// otherwise it only listens. rng must be the node's private RNG.
func NewPhase(n, iterations int, active bool, msg radio.Message, rng coin) *Phase {
	if iterations < 1 {
		iterations = 1
	}
	return &Phase{
		stepsPerIter: StepsPerIteration(n),
		iterations:   iterations,
		active:       active,
		msg:          msg,
		rng:          rng,
	}
}

// Len returns the number of time-steps the phase occupies.
func (p *Phase) Len() int { return p.stepsPerIter * p.iterations }

// Act returns the node's action for local step `local` (0-based within the
// phase). Active senders transmit with probability 2^-(i+1) where i is the
// position within the current iteration; everyone else listens.
func (p *Phase) Act(local int) radio.Action {
	if !p.active {
		return radio.Listen()
	}
	i := local % p.stepsPerIter // 0-based position within the iteration
	prob := math.Pow(2, -float64(i+1))
	if p.rng.Bernoulli(prob) {
		return radio.Transmit(p.msg)
	}
	return radio.Listen()
}

// Deliver records a successful reception during the phase.
func (p *Phase) Deliver(local int, msg radio.Message) {
	if msg == nil {
		return
	}
	if p.heardCount == 0 {
		p.heardFirst = msg
	}
	p.heardCount++
}

// Heard reports whether anything was received during the phase, and the
// first received message.
func (p *Phase) Heard() (radio.Message, bool) {
	return p.heardFirst, p.heardCount > 0
}

// HeardCount returns the number of successful receptions during the phase.
func (p *Phase) HeardCount() int { return p.heardCount }
