package gen

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// sameCSR asserts two snapshots are list-for-list identical, with a useful
// failure message (Equal alone says only "differs").
func sameCSR(t *testing.T, got, want *graph.CSR, label string) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("%s: n = %d, want %d", label, got.N(), want.N())
	}
	for v := 0; v < want.N(); v++ {
		g, w := got.Neighbors(v), want.Neighbors(v)
		if len(g) != len(w) {
			t.Fatalf("%s: vertex %d degree %d, want %d (%v vs %v)", label, v, len(g), len(w), g, w)
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("%s: vertex %d adjacency[%d] = %d, want %d", label, v, i, g[i], w[i])
			}
		}
	}
}

// TestStreamCSRMatchesBuilder pins the tentpole contract: the streaming
// direct-to-CSR build reproduces the Builder path's frozen snapshot
// list-for-list across densities and radii.
func TestStreamCSRMatchesBuilder(t *testing.T) {
	rng := xrand.New(23)
	for _, n := range []int{1, 2, 37, 300, 1500} {
		for _, radius := range []float64{0.3, 1, 2.5} {
			side := math.Sqrt(float64(n+1)) * 1.5
			pts := UniformPoints(n, 2, side, rng)
			c, ok := udgStreamCSR(pts, radius)
			g, gok := udgGrid2D(pts, radius)
			if ok != gok {
				t.Fatalf("n=%d r=%v: stream ok=%v but grid ok=%v (must decline together)", n, radius, ok, gok)
			}
			if !ok {
				continue
			}
			sameCSR(t, c, g.Freeze(), "stream")
		}
	}
}

// TestStreamCSRBoundaryPairs mirrors the grid-path boundary test: exact-
// radius pairs (edges), one-ulp-beyond pairs (non-edges), and co-located
// pairs must come out identically on the streaming path.
func TestStreamCSRBoundaryPairs(t *testing.T) {
	r := 1.0
	pts := []Point{
		{0, 0}, {r, 0},
		{10, 10}, {10, 10 + r},
		{0, 30}, {math.Nextafter(r, 2), 30},
		{5, 5}, {5, 5},
	}
	c, ok := udgStreamCSR(pts, r)
	if !ok {
		t.Fatal("stream path refused a spread-out deployment")
	}
	sameCSR(t, c, thresholdGraph(pts, r, Point.Dist).Freeze(), "boundary")
}

// TestStreamCSRDeclines: the streaming path must decline exactly the inputs
// the grid index declines, so UDG's fallback chain stays airtight.
func TestStreamCSRDeclines(t *testing.T) {
	if _, ok := udgStreamCSR(UniformPoints(8, 3, 4, xrand.New(1)), 1); ok {
		t.Fatal("stream path accepted 3-D points")
	}
	if _, ok := udgStreamCSR([]Point{{0, 0}, {math.NaN(), 1}}, 1); ok {
		t.Fatal("stream path accepted NaN coordinates")
	}
	if _, ok := udgStreamCSR([]Point{{0, 0}, {5, 5}}, math.Inf(1)); ok {
		t.Fatal("stream path accepted infinite radius")
	}
}

// TestUDGRoutesThroughStream: above StreamThreshold the public UDG wrapper
// uses the streaming build; the result must still match the Builder path
// (checked on a sampled subset — the full quadratic reference is too slow
// at this n).
func TestUDGRoutesThroughStream(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n routing check skipped in -short")
	}
	n := StreamThreshold
	side := math.Sqrt(float64(n) * math.Pi / 8)
	pts := UniformPoints(n, 2, side, xrand.New(5))
	g := UDG(pts, 1)
	want, ok := udgGrid2D(pts, 1)
	if !ok {
		t.Fatal("grid path refused the deployment")
	}
	sameAdjacency(t, g, want, "routed")
}

// TestBuildCSRMatchesByName pins BuildCSR's promise: for the streaming-
// capable classes it draws the same deployment and builds the same graph as
// ByNameWithPoints — same seed derivation, same retry discipline — and for
// every other spec it is exactly ByNameWithPoints + Freeze.
func TestBuildCSRMatchesByName(t *testing.T) {
	for _, name := range []string{"udg", "phy:sinr", "grid", "tree"} {
		c, cpts, err := BuildCSR(name, 600, 42)
		if err != nil {
			t.Fatalf("BuildCSR(%q): %v", name, err)
		}
		g, gpts, err := ByNameWithPoints(name, 600, 42)
		if err != nil {
			t.Fatalf("ByNameWithPoints(%q): %v", name, err)
		}
		sameCSR(t, c.Unpack(), g.Freeze(), name)
		if (cpts == nil) != (gpts == nil) || len(cpts) != len(gpts) {
			t.Fatalf("%q: points mismatch (%d vs %d)", name, len(cpts), len(gpts))
		}
		for i := range cpts {
			for d := range cpts[i] {
				if cpts[i][d] != gpts[i][d] {
					t.Fatalf("%q: point %d differs", name, i)
				}
			}
		}
	}
	if _, _, err := BuildCSR("udg", 0, 1); err == nil {
		t.Fatal("BuildCSR accepted n=0")
	}
	if _, _, err := BuildCSR("nosuch", 10, 1); err == nil {
		t.Fatal("BuildCSR accepted an unknown class")
	}
}

// TestBuildCSRPacksLargeN: at n ≥ graph.CompactThreshold the streaming
// entry point hands back packed adjacency; below, flat.
func TestBuildCSRPacksLargeN(t *testing.T) {
	c, _, err := BuildCSR("udg", 512, 9)
	if err != nil {
		t.Fatal(err)
	}
	if c.IsPacked() {
		t.Fatal("small-n BuildCSR returned packed adjacency")
	}
	if testing.Short() {
		t.Skip("compact-threshold build skipped in -short")
	}
	big, _, err := BuildCSR("udg", graph.CompactThreshold, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !big.IsPacked() {
		t.Fatal("large-n BuildCSR returned flat adjacency")
	}
	if !big.Connected() {
		t.Fatal("BuildCSR returned a disconnected deployment")
	}
}

// FuzzStreamCSRVsBuilder fuzzes the tentpole equivalence on random 2-D
// deployments: bytes decode pairwise into coordinates on a [0, 16]² box
// (coarse lattice positions, so exact-boundary and co-located pairs occur
// constantly), plus one byte choosing the radius. The streamed CSR must
// have identical offsets and edges to the Builder path's frozen form, and
// both paths must accept/decline together.
func FuzzStreamCSRVsBuilder(f *testing.F) {
	f.Add([]byte{8, 0, 0, 16, 0, 0, 16, 16, 16, 200, 200})
	f.Add([]byte{3, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		radius := 0.25 + float64(data[0]%32)/8
		stream := data[1:]
		var pts []Point
		for i := 0; i+1 < len(stream) && len(pts) < 160; i += 2 {
			pts = append(pts, Point{float64(stream[i]) / 16, float64(stream[i+1]) / 16})
		}
		c, ok := udgStreamCSR(pts, radius)
		g, gok := udgGrid2D(pts, radius)
		if ok != gok {
			t.Fatalf("stream ok=%v, grid ok=%v", ok, gok)
		}
		if !ok {
			return
		}
		want := g.Freeze()
		if !c.Equal(want) {
			for v := 0; v < want.N(); v++ {
				cn, wn := c.Neighbors(v), want.Neighbors(v)
				if len(cn) != len(wn) {
					t.Fatalf("vertex %d: stream degree %d, builder %d", v, len(cn), len(wn))
				}
				for i := range cn {
					if cn[i] != wn[i] {
						t.Fatalf("vertex %d pos %d: stream %d, builder %d", v, i, cn[i], wn[i])
					}
				}
			}
			t.Fatal("Equal=false but lists match (offsets disagree?)")
		}
	})
}
