package gen

// Shared construction of reception models from phy: specs, so the callers
// that execute them — the serve subsystem and radionet-sim — cannot drift
// on what "phy:cd:<class>" or "phy:sinr" means.

import (
	"fmt"

	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/phy"
)

// PhyDeployment builds one static phy: spec replica: the reception model
// plus the abstraction graph the engines derive parameter estimates from —
// the class itself for "phy:cd:<class>", the decode-range connectivity
// view of the drawn deployment for "phy:sinr" (params resolved through
// phy defaults; ignored for cd specs).
func PhyDeployment(spec string, n int, seed uint64, params phy.SINRParams) (*graph.Graph, phy.Model, error) {
	model, _, ok := SplitPhySpec(spec)
	if !ok {
		return nil, nil, fmt.Errorf("gen: %q is not a phy: spec", spec)
	}
	g, pts, err := ByNameWithPoints(spec, n, seed)
	if err != nil {
		return nil, nil, err
	}
	if model == "cd" {
		return g, phy.NewCollisionCD(), nil
	}
	m, err := phy.NewSINR(pts, params)
	if err != nil {
		return nil, nil, err
	}
	return SINRConnectivity(pts, m.Params()), m, nil
}

// SchedulePhyModel builds the reception model for a phy: spec whose run
// follows a schedule (the flood paths): the SINR variant reads per-epoch
// positions from the schedule itself. ok is false — with a nil model, the
// engine default — for non-phy specs, so flood callers can handle every
// spec uniformly.
func SchedulePhyModel(spec string, sched *dyn.Schedule, params phy.SINRParams) (m phy.Model, ok bool, err error) {
	model, _, isPhy := SplitPhySpec(spec)
	if !isPhy {
		return nil, false, nil
	}
	if model == "cd" {
		return phy.NewCollisionCD(), true, nil
	}
	m, err = phy.NewMobileSINR(sched, params)
	return m, true, err
}
