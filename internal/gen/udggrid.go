package gen

import (
	"math"
	"slices"

	"repro/internal/graph"
	"repro/internal/phy"
)

// udgGrid2D is the grid-bucketed fast path behind UDG for 2-D deployments:
// positions are split into structure-of-arrays coordinate slices
// (phy.SplitXY), bucketed into a uniform grid of cell side > radius, and
// each vertex tests only the 3×3 cell ring around its own cell. Expected
// O(n + m) on bounded-density deployments versus the naive O(n²) scan —
// the difference between milliseconds and minutes at n = 65536.
//
// The result is list-for-list identical to thresholdGraph(pts, radius,
// Point.Dist): the per-pair predicate reuses Dist's exact float arithmetic
// (fl(fl(dx²)+fl(dy²)) then a correctly-rounded sqrt, compared ≤ radius),
// and edges are emitted in the same lexicographic (i, j) order, so the
// Builder assembles identical ascending adjacency lists. The cell side
// carries a 1e-9 relative slack above radius, so any pair split by a full
// cell is farther than radius by margins no rounding in Dist can cross —
// skipping non-adjacent cells never drops a boundary edge.
//
// ok is false — caller falls back to the quadratic scan — for non-2-D
// points, non-finite coordinates, radius ≤ 0, or radius wide enough to
// cover the whole bounding box (where the grid cannot prune anything).
func udgGrid2D(pts []Point, radius float64) (*graph.Graph, bool) {
	n := len(pts)
	if n == 0 || !(radius > 0) || math.IsInf(radius, 1) {
		return nil, false
	}
	xs, ys, ok := phy.SplitXY(pts)
	if !ok {
		return nil, false
	}
	minX, maxX := xs[0], xs[0]
	minY, maxY := ys[0], ys[0]
	for i := 0; i < n; i++ {
		x, y := xs[i], ys[i]
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return nil, false
		}
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
		minY, maxY = math.Min(minY, y), math.Max(maxY, y)
	}
	cs := radius * (1 + 1e-9)
	if maxX-minX <= cs && maxY-minY <= cs {
		return nil, false // one cell: the grid prunes nothing
	}
	cols := int((maxX-minX)/cs) + 1
	rows := int((maxY-minY)/cs) + 1
	if cells := float64(cols) * float64(rows); cells > float64(4*n+16) {
		// Sparse deployment relative to radius: coarsen the grid so the
		// cell table stays O(n). Correctness only needs cs > radius.
		cs *= math.Sqrt(cells / float64(4*n+16))
		cols = int((maxX-minX)/cs) + 1
		rows = int((maxY-minY)/cs) + 1
	}

	// Counting-sort vertices into cells; ascending vertex order keeps every
	// cell's list ascending, which the merge below relies on.
	cellOf := make([]int32, n)
	cellStart := make([]int32, cols*rows+1)
	for i := 0; i < n; i++ {
		cx := int((xs[i] - minX) / cs)
		cy := int((ys[i] - minY) / cs)
		if cx >= cols {
			cx = cols - 1
		}
		if cy >= rows {
			cy = rows - 1
		}
		c := int32(cy*cols + cx)
		cellOf[i] = c
		cellStart[c+1]++
	}
	for c := 0; c < cols*rows; c++ {
		cellStart[c+1] += cellStart[c]
	}
	cellNodes := make([]int32, n)
	cursor := make([]int32, cols*rows)
	copy(cursor, cellStart[:cols*rows])
	for i := 0; i < n; i++ {
		c := cellOf[i]
		cellNodes[cursor[c]] = int32(i)
		cursor[c]++
	}

	b := graph.NewBuilder(n)
	nbrs := make([]int32, 0, 64)
	for i := 0; i < n; i++ {
		xi, yi := xs[i], ys[i]
		ci := int(cellOf[i])
		cx, cy := ci%cols, ci/cols
		nbrs = nbrs[:0]
		for gy := max(cy-1, 0); gy <= min(cy+1, rows-1); gy++ {
			for gx := max(cx-1, 0); gx <= min(cx+1, cols-1); gx++ {
				c := gy*cols + gx
				for _, j := range cellNodes[cellStart[c]:cellStart[c+1]] {
					if j <= int32(i) {
						continue
					}
					dx := xi - xs[j]
					dy := yi - ys[j]
					if math.Sqrt(dx*dx+dy*dy) <= radius {
						nbrs = append(nbrs, j)
					}
				}
			}
		}
		// Ring cells yield ascending runs, not a globally ascending list;
		// sort so Add order matches the lexicographic quadratic scan.
		slices.Sort(nbrs)
		for _, j := range nbrs {
			b.Add(i, int(j))
		}
	}
	return b.Build(), true
}
