package gen

import (
	"math"
	"slices"

	"repro/internal/graph"
	"repro/internal/phy"
)

// geoGrid2D is the uniform-grid spatial index shared by the UDG fast paths:
// positions split into structure-of-arrays coordinate slices (phy.SplitXY)
// and bucketed into cells of side > radius, so each vertex tests only the
// 3×3 cell ring around its own cell. Both consumers — the Builder-backed
// udgGrid2D and the streaming direct-to-CSR udgStreamCSR — walk the same
// bucket tables, which is what makes their outputs list-for-list identical:
// same candidate enumeration order, same per-pair predicate.
type geoGrid2D struct {
	xs, ys     []float64
	cols, rows int
	cellOf     []int32 // vertex → cell id
	cellStart  []int32 // CSR offsets into cellNodes, len cols*rows+1
	cellNodes  []int32 // vertices grouped by cell, ascending within each cell
}

// newGeoGrid2D buckets a 2-D deployment for neighbor queries at the given
// radius. ok is false — callers fall back to the quadratic scan — for
// non-2-D points, non-finite coordinates, radius ≤ 0, or radius wide enough
// to cover the whole bounding box (where the grid cannot prune anything).
//
// The cell side carries a 1e-9 relative slack above radius, so any pair
// split by a full cell is farther than radius by margins no rounding in
// Point.Dist can cross — skipping non-adjacent cells never drops a boundary
// edge.
func newGeoGrid2D(pts []Point, radius float64) (*geoGrid2D, bool) {
	n := len(pts)
	if n == 0 || !(radius > 0) || math.IsInf(radius, 1) {
		return nil, false
	}
	xs, ys, ok := phy.SplitXY(pts)
	if !ok {
		return nil, false
	}
	minX, maxX := xs[0], xs[0]
	minY, maxY := ys[0], ys[0]
	for i := 0; i < n; i++ {
		x, y := xs[i], ys[i]
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return nil, false
		}
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
		minY, maxY = math.Min(minY, y), math.Max(maxY, y)
	}
	cs := radius * (1 + 1e-9)
	if maxX-minX <= cs && maxY-minY <= cs {
		return nil, false // one cell: the grid prunes nothing
	}
	cols := int((maxX-minX)/cs) + 1
	rows := int((maxY-minY)/cs) + 1
	if cells := float64(cols) * float64(rows); cells > float64(4*n+16) {
		// Sparse deployment relative to radius: coarsen the grid so the
		// cell table stays O(n). Correctness only needs cs > radius.
		cs *= math.Sqrt(cells / float64(4*n+16))
		cols = int((maxX-minX)/cs) + 1
		rows = int((maxY-minY)/cs) + 1
	}

	// Counting-sort vertices into cells; ascending vertex order keeps every
	// cell's list ascending, which the consumers' merges rely on.
	cellOf := make([]int32, n)
	cellStart := make([]int32, cols*rows+1)
	for i := 0; i < n; i++ {
		cx := int((xs[i] - minX) / cs)
		cy := int((ys[i] - minY) / cs)
		if cx >= cols {
			cx = cols - 1
		}
		if cy >= rows {
			cy = rows - 1
		}
		c := int32(cy*cols + cx)
		cellOf[i] = c
		cellStart[c+1]++
	}
	for c := 0; c < cols*rows; c++ {
		cellStart[c+1] += cellStart[c]
	}
	cellNodes := make([]int32, n)
	cursor := make([]int32, cols*rows)
	copy(cursor, cellStart[:cols*rows])
	for i := 0; i < n; i++ {
		c := cellOf[i]
		cellNodes[cursor[c]] = int32(i)
		cursor[c]++
	}
	return &geoGrid2D{
		xs: xs, ys: ys, cols: cols, rows: rows,
		cellOf: cellOf, cellStart: cellStart, cellNodes: cellNodes,
	}, true
}

// ring calls yield with each cell of the 3×3 ring around vertex i's cell,
// in row-major (gy, gx) order — the canonical candidate enumeration order
// both UDG paths share.
func (gg *geoGrid2D) ring(i int, yield func(nodes []int32)) {
	ci := int(gg.cellOf[i])
	cx, cy := ci%gg.cols, ci/gg.cols
	for gy := max(cy-1, 0); gy <= min(cy+1, gg.rows-1); gy++ {
		for gx := max(cx-1, 0); gx <= min(cx+1, gg.cols-1); gx++ {
			c := gy*gg.cols + gx
			yield(gg.cellNodes[gg.cellStart[c]:gg.cellStart[c+1]])
		}
	}
}

// udgGrid2D is the grid-bucketed fast path behind UDG for 2-D deployments:
// expected O(n + m) on bounded-density deployments versus the naive O(n²)
// scan — the difference between milliseconds and minutes at n = 65536.
//
// The result is list-for-list identical to thresholdGraph(pts, radius,
// Point.Dist): the per-pair predicate reuses Dist's exact float arithmetic
// (fl(fl(dx²)+fl(dy²)) then a correctly-rounded sqrt, compared ≤ radius),
// and edges are emitted in the same lexicographic (i, j) order, so the
// Builder assembles identical ascending adjacency lists.
//
// ok is false — caller falls back to the quadratic scan — exactly when
// newGeoGrid2D declines the deployment.
func udgGrid2D(pts []Point, radius float64) (*graph.Graph, bool) {
	gg, ok := newGeoGrid2D(pts, radius)
	if !ok {
		return nil, false
	}
	n := len(pts)
	xs, ys := gg.xs, gg.ys
	b := graph.NewBuilder(n)
	nbrs := make([]int32, 0, 64)
	for i := 0; i < n; i++ {
		xi, yi := xs[i], ys[i]
		nbrs = nbrs[:0]
		gg.ring(i, func(nodes []int32) {
			for _, j := range nodes {
				if j <= int32(i) {
					continue
				}
				dx := xi - xs[j]
				dy := yi - ys[j]
				if math.Sqrt(dx*dx+dy*dy) <= radius {
					nbrs = append(nbrs, j)
				}
			}
		})
		// Ring cells yield ascending runs, not a globally ascending list;
		// sort so Add order matches the lexicographic quadratic scan.
		slices.Sort(nbrs)
		for _, j := range nbrs {
			b.Add(i, int(j))
		}
	}
	return b.Build(), true
}
