// Package gen generates the graph classes studied by the paper (§1.3):
// general graphs (paths, cycles, cliques, stars, grids, random trees, G(n,p))
// and the geometric-derived families — unit disk graphs, quasi unit disk
// graphs, unit ball graphs over doubling metrics, and (undirected) geometric
// radio networks — plus adversarial hybrids used for ablations.
//
// All generators are deterministic given an xrand.RNG, and geometric
// generators also return the point set so experiments can inspect geometry.
package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/phy"
	"repro/internal/xrand"
)

// Point is a position in d-dimensional Euclidean space. It is an alias of
// phy.Point — the physical layer owns the geometric primitives — so point
// sets flow between generators, dynamic schedules, and reception models
// without conversion.
type Point = phy.Point

// Path returns the path graph P_n (diameter n-1, α = ⌈n/2⌉).
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.Add(i, i+1)
	}
	return b.Build()
}

// Cycle returns the cycle C_n.
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.Add(i, i+1)
	}
	if n > 2 {
		b.Add(0, n-1)
	}
	return b.Build()
}

// Clique returns the complete graph K_n (D = 1, α = 1) — the single-hop
// network used in the MIS lower-bound reduction.
func Clique(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.Add(i, j)
		}
	}
	return b.Build()
}

// Star returns K_{1,n-1} with center 0.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.Add(0, v)
	}
	return b.Build()
}

// Grid returns the rows×cols grid graph — growth-bounded with α(B_d)=Θ(d²).
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.Add(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.Add(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// RandomTree returns a uniform random recursive tree on n vertices.
func RandomTree(n int, rng *xrand.RNG) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.Add(v, rng.Intn(v))
	}
	return b.Build()
}

// GNP returns an Erdős–Rényi G(n,p) random graph.
func GNP(n int, p float64, rng *xrand.RNG) *graph.Graph {
	if p >= 1 {
		return Clique(n)
	}
	if p <= 0 {
		return graph.New(n)
	}
	b := graph.NewBuilder(n)
	// Skip-sampling: jump geometric gaps between present edges.
	v, w := 1, -1
	for v < n {
		w += 1 + rng.Geometric(p)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			b.Add(v, w)
		}
	}
	return b.Build()
}

// GNPConnected retries G(n,p) until connected (at most tries attempts).
func GNPConnected(n int, p float64, tries int, rng *xrand.RNG) (*graph.Graph, error) {
	for t := 0; t < tries; t++ {
		g := GNP(n, p, rng)
		if g.Connected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("gen: G(%d,%v) not connected after %d tries", n, p, tries)
}

// UniformPoints draws n points uniformly from [0,side]^dim.
func UniformPoints(n, dim int, side float64, rng *xrand.RNG) []Point {
	pts := make([]Point, n)
	for i := range pts {
		p := make(Point, dim)
		for d := range p {
			p[d] = rng.Float64() * side
		}
		pts[i] = p
	}
	return pts
}

// UDG builds the unit disk graph on pts with connection radius radius:
// an edge {u,v} iff Euclidean distance ≤ radius. Finite 2-D deployments
// take a grid-bucketed O(n + m) path that is list-for-list identical to
// the naive scan — above StreamThreshold the streaming direct-to-CSR
// variant, which skips the Builder's edge staging entirely; everything
// else (other dimensions, non-finite inputs, degenerate radii) falls back
// to the quadratic reference.
func UDG(pts []Point, radius float64) *graph.Graph {
	if len(pts) >= StreamThreshold {
		if c, ok := udgStreamCSR(pts, radius); ok {
			return graph.FromCSR(c)
		}
	}
	if g, ok := udgGrid2D(pts, radius); ok {
		return g
	}
	return thresholdGraph(pts, radius, Point.Dist)
}

// UnitBallLInf builds the unit ball graph under the ℓ∞ (doubling) metric.
func UnitBallLInf(pts []Point, radius float64) *graph.Graph {
	return thresholdGraph(pts, radius, Point.DistLInf)
}

func thresholdGraph(pts []Point, radius float64, dist func(Point, Point) float64) *graph.Graph {
	b := graph.NewBuilder(len(pts))
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if dist(pts[i], pts[j]) <= radius {
				b.Add(i, j)
			}
		}
	}
	return b.Build()
}

// QuasiUDG builds a quasi unit disk graph (§1.3): pairs closer than r are
// always connected, pairs farther than R never, and pairs in (r, R] are
// connected independently with probability pMid (decided symmetrically).
func QuasiUDG(pts []Point, r, bigR, pMid float64, rng *xrand.RNG) (*graph.Graph, error) {
	if bigR < r {
		return nil, fmt.Errorf("gen: quasi-UDG needs R >= r, got r=%v R=%v", r, bigR)
	}
	b := graph.NewBuilder(len(pts))
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			d := pts[i].Dist(pts[j])
			switch {
			case d < r:
				b.Add(i, j)
			case d <= bigR && rng.Bernoulli(pMid):
				b.Add(i, j)
			}
		}
	}
	return b.Build(), nil
}

// GeometricRadioNetwork builds the undirected subclass of geometric radio
// networks (§1.3): node v has a range rv drawn uniformly from
// [minRange, maxRange]; the directed edge v→u exists when dist(u,v) ≤ rv,
// and we keep only mutual (undirected) edges, matching the paper's
// restriction to undirected graphs. The bounded ratio maxRange/minRange
// keeps the class growth-bounded.
func GeometricRadioNetwork(pts []Point, minRange, maxRange float64, rng *xrand.RNG) (*graph.Graph, []float64, error) {
	if minRange <= 0 || maxRange < minRange {
		return nil, nil, fmt.Errorf("gen: bad range interval [%v,%v]", minRange, maxRange)
	}
	ranges := make([]float64, len(pts))
	for i := range ranges {
		ranges[i] = minRange + rng.Float64()*(maxRange-minRange)
	}
	b := graph.NewBuilder(len(pts))
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			d := pts[i].Dist(pts[j])
			if d <= ranges[i] && d <= ranges[j] { // mutual reachability only
				b.Add(i, j)
			}
		}
	}
	return b.Build(), ranges, nil
}

// ConnectedUDG generates points until the UDG is connected, scaling the
// deployment area so expected degree stays near degTarget.
func ConnectedUDG(n int, degTarget float64, tries int, rng *xrand.RNG) (*graph.Graph, []Point, error) {
	// With n points in side², expected neighbors within radius 1 is
	// approximately n·π/side²; choose side to hit degTarget.
	side := math.Sqrt(float64(n) * math.Pi / degTarget)
	for t := 0; t < tries; t++ {
		pts := UniformPoints(n, 2, side, rng)
		g := UDG(pts, 1)
		if g.Connected() {
			return g, pts, nil
		}
	}
	return nil, nil, fmt.Errorf("gen: no connected UDG(n=%d, deg=%v) in %d tries", n, degTarget, tries)
}

// SINRConnectivity returns the zero-interference reachability graph of a
// deployment under uniform-power SINR params: the disk graph at the decode
// range. This is the graph-model counterpart the paper's abstraction uses —
// the reference against which the cross-model experiments judge protocol
// outputs produced under SINR physics, and the parameter-estimate skeleton
// unified SINR runs hand to radio.Run. A noiseless channel (explicit Noise
// 0) has unbounded range, so its connectivity graph is complete.
func SINRConnectivity(pts []Point, params phy.SINRParams) *graph.Graph {
	return UDG(pts, params.WithDefaults().DecodeRange())
}

// CliqueChain returns a path of k cliques of size s joined by single bridge
// edges. Diameter ≈ 3k while α = k, a general-graph workload whose α is
// polynomial in D, used to show the α-parametrization helps beyond
// geometric classes.
func CliqueChain(k, s int) *graph.Graph {
	b := graph.NewBuilder(k * s)
	for c := 0; c < k; c++ {
		base := c * s
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				b.Add(base+i, base+j)
			}
		}
		if c+1 < k {
			b.Add(base+s-1, base+s) // bridge to next clique
		}
	}
	return b.Build()
}

// Lollipop returns a clique of size s with a path of length tail attached:
// small α with large D concentrated in the tail.
func Lollipop(s, tail int) *graph.Graph {
	b := graph.NewBuilder(s + tail)
	for i := 0; i < s; i++ {
		for j := i + 1; j < s; j++ {
			b.Add(i, j)
		}
	}
	prev := s - 1
	for t := 0; t < tail; t++ {
		b.Add(prev, s+t)
		prev = s + t
	}
	return b.Build()
}

// Hypercube returns the d-dimensional hypercube graph Q_d on 2^d vertices
// (diameter d, α = 2^(d-1)) — a classic general-graph topology where α is
// exponential in D, the opposite regime from growth-bounded classes.
func Hypercube(d int) *graph.Graph {
	n := 1 << uint(d)
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			w := v ^ (1 << uint(bit))
			if w > v {
				b.Add(v, w)
			}
		}
	}
	return b.Build()
}

// RandomRegular returns a random d-regular multigraph-free graph on n
// vertices via repeated pairing with restarts (configuration model with
// rejection). n·d must be even. Random regular graphs are expanders whp:
// tiny D with large α — another general-graph stress case.
func RandomRegular(n, d int, tries int, rng *xrand.RNG) (*graph.Graph, error) {
	if d < 1 || d >= n {
		return nil, fmt.Errorf("gen: need 1 ≤ d < n, got d=%d n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("gen: n·d must be even, got %d·%d", n, d)
	}
	for t := 0; t < tries; t++ {
		if g, ok := tryRegular(n, d, rng); ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("gen: no simple %d-regular graph on %d vertices found in %d tries", d, n, tries)
}

// tryRegular attempts one configuration-model pairing.
func tryRegular(n, d int, rng *xrand.RNG) (*graph.Graph, bool) {
	stubs := make([]int32, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, int32(v))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := graph.New(n)
	for i := 0; i < len(stubs); i += 2 {
		u, v := int(stubs[i]), int(stubs[i+1])
		if u == v || g.HasEdge(u, v) {
			return nil, false // self-loop or multi-edge: reject and retry
		}
		g.AddEdge(u, v)
	}
	return g, true
}

// DoublingTreePoints places n points on a b-ary tree metric of depth depth:
// the distance between leaves is the tree distance. This exercises unit ball
// graphs over a non-Euclidean doubling metric. It returns the pairwise
// threshold graph at the given radius directly (points are implicit).
func DoublingTreeBallGraph(b, depth int, radius int) *graph.Graph {
	// Enumerate leaves of the complete b-ary tree of given depth; the metric
	// between leaves x,y is 2·(depth − lca_depth(x,y)).
	n := 1
	for i := 0; i < depth; i++ {
		n *= b
	}
	bld := graph.NewBuilder(n)
	digits := func(x int) []int {
		ds := make([]int, depth)
		for i := depth - 1; i >= 0; i-- {
			ds[i] = x % b
			x /= b
		}
		return ds
	}
	all := make([][]int, n)
	for v := 0; v < n; v++ {
		all[v] = digits(v)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			common := 0
			for common < depth && all[u][common] == all[v][common] {
				common++
			}
			if 2*(depth-common) <= radius {
				bld.Add(u, v)
			}
		}
	}
	return bld.Build()
}
