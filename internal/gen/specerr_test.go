package gen

import (
	"math"
	"strings"
	"testing"
)

// The serve subsystem turns these errors into HTTP 400s, so every
// malformed-spec shape must fail loudly (and identically) in ByName,
// ScheduleByName, and the build-free ValidateSpec.
func TestMalformedSpecs(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want string
	}{
		{"unknown class", "nosuch", "unknown graph class"},
		{"unknown dynamic kind", "warp:grid", "unknown dynamic kind"},
		{"missing payload", "churn:", "unknown graph class"},
		{"fault missing payload", "fault:", "unknown graph class"},
		{"unknown wrapped class", "churn:nosuch", "unknown graph class"},
		{"mobile non-udg", "mobile:grid", "only mobile:udg"},
		{"nested dynamic", "churn:fault:grid", "nested dynamic spec"},
		{"doubly nested dynamic", "churn:churn:grid", "nested dynamic spec"},
		{"empty spec", "", "unknown graph class"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := ValidateSpec(tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("ValidateSpec(%q) = %v, want %q", tc.spec, err, tc.want)
			}
			if _, err := ByName(tc.spec, 16, 1); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("ByName(%q) = %v, want %q", tc.spec, err, tc.want)
			}
			if _, err := ScheduleByName(tc.spec, 16, 2, 8, 0.2, 1); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("ScheduleByName(%q) = %v, want %q", tc.spec, err, tc.want)
			}
		})
	}
}

func TestScheduleByNameBadRate(t *testing.T) {
	cases := []struct {
		name string
		spec string
		rate float64
	}{
		{"churn rate above 1", "churn:grid", 1.5},
		{"fault rate above 1", "fault:grid", 2},
		{"churn rate NaN", "churn:grid", math.NaN()},
		{"mobile rate Inf", "mobile:udg", math.Inf(1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ScheduleByName(tc.spec, 16, 2, 8, tc.rate, 1); err == nil || !strings.Contains(err.Error(), "rate") {
				t.Errorf("ScheduleByName(%q, rate=%v) = %v, want rate error", tc.spec, tc.rate, err)
			}
		})
	}
	// A mobile speed above 1 is legal: it is radio-ranges per epoch, not a
	// probability.
	if _, err := ScheduleByName("mobile:udg", 16, 2, 8, 1.5, 1); err != nil {
		t.Errorf("ScheduleByName(mobile:udg, rate=1.5) = %v, want nil", err)
	}
}

func TestByNameBadN(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := ByName("grid", n, 1); err == nil || !strings.Contains(err.Error(), "n ≥ 1") {
			t.Errorf("ByName(grid, n=%d) = %v, want n error", n, err)
		}
	}
}

func TestValidateSpecAccepts(t *testing.T) {
	specs := append([]string{}, ClassNames...)
	specs = append(specs, "churn:grid", "fault:gnp", "mobile:udg")
	for _, s := range specs {
		if err := ValidateSpec(s); err != nil {
			t.Errorf("ValidateSpec(%q) = %v, want nil", s, err)
		}
	}
}

func TestSplitSpec(t *testing.T) {
	if kind, class, dyn := SplitSpec("churn:grid"); !dyn || kind != "churn" || class != "grid" {
		t.Fatalf("SplitSpec(churn:grid) = %q %q %v", kind, class, dyn)
	}
	if _, _, dyn := SplitSpec("grid"); dyn {
		t.Fatal("SplitSpec(grid) claimed dynamic")
	}
}
