package gen

import (
	"strings"
	"testing"
)

// FuzzByNameSpec fuzzes the spec grammar that now guards four subsystems —
// static classes, dynamic topologies (churn:/fault:/mobile:), and the
// physical layer (phy:) — for the agreement property the serve subsystem
// depends on: ValidateSpec is the gatekeeper, so no spec it rejects may
// build through ByName/ByNameWithPoints/ScheduleByName, and nothing may
// panic on adversarial input. (The converse is not required: a validated
// spec may still fail to build for size reasons, e.g. a connectivity retry
// budget at tiny n.)
func FuzzByNameSpec(f *testing.F) {
	for _, spec := range []string{
		"grid", "udg", "gnp", "regular",
		"churn:grid", "fault:gnp", "mobile:udg",
		"phy:sinr", "phy:cd:grid", "phy:cd:udg",
		// Malformed shapes the validator must reject without panicking.
		"phy:collision:grid", "phy:sinr:udg", "phy:cd:churn:grid", "phy:",
		"churn:churn:grid", "mobile:grid", "fault:", ":", "phy",
		"churn:phy:sinr", "bogus", "PHY:SINR", "phy:cd:",
	} {
		f.Add(spec)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		if len(spec) > 128 {
			return // the grammar is tiny; huge inputs only slow the fuzzer
		}
		verr := ValidateSpec(spec)
		g, pts, err := ByNameWithPoints(spec, 9, 3)
		if verr != nil && err == nil {
			t.Fatalf("ValidateSpec rejected %q (%v) but ByNameWithPoints built it", spec, verr)
		}
		if err == nil {
			if g == nil || g.N() < 1 {
				t.Fatalf("ByNameWithPoints(%q) returned a degenerate graph", spec)
			}
			if pts != nil && len(pts) != g.N() {
				t.Fatalf("ByNameWithPoints(%q): %d points for %d nodes", spec, len(pts), g.N())
			}
			if strings.HasPrefix(spec, "phy:sinr") && pts == nil {
				t.Fatalf("ByNameWithPoints(%q) returned no deployment points", spec)
			}
		}
		sched, serr := ScheduleByName(spec, 9, 2, 4, 0.25, 3)
		if verr != nil && serr == nil {
			t.Fatalf("ValidateSpec rejected %q (%v) but ScheduleByName built it", spec, verr)
		}
		if serr == nil && (sched.N() < 1 || sched.Epochs() < 1) {
			t.Fatalf("ScheduleByName(%q) returned a degenerate schedule", spec)
		}
	})
}
