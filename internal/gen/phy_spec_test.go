package gen

import (
	"testing"

	"repro/internal/phy"
)

func TestPhySpecGrammar(t *testing.T) {
	good := []string{"phy:sinr", "phy:cd:grid", "phy:cd:udg", "phy:cd:gnp"}
	for _, spec := range good {
		if err := ValidateSpec(spec); err != nil {
			t.Errorf("ValidateSpec(%q) = %v, want nil", spec, err)
		}
		if _, err := ByName(spec, 36, 5); err != nil {
			t.Errorf("ByName(%q) = %v, want nil", spec, err)
		}
	}
	bad := []string{
		"phy:collision:grid", // the bare class is the canonical spelling
		"phy:sinr:udg", "phy:cd:churn:grid", "phy:cd:bogus", "phy:", "phy:fm",
		"churn:phy:sinr", // phy composes outside, never inside, dynamics
	}
	for _, spec := range bad {
		if err := ValidateSpec(spec); err == nil {
			t.Errorf("ValidateSpec(%q) = nil, want error", spec)
		}
		if _, err := ByName(spec, 36, 5); err == nil {
			t.Errorf("ByName(%q) = nil, want error", spec)
		}
	}
}

func TestSplitPhySpec(t *testing.T) {
	cases := []struct {
		spec, model, class string
		ok                 bool
	}{
		{"phy:sinr", "sinr", "udg", true},
		{"phy:cd:grid", "cd", "grid", true},
		{"grid", "", "", false},
		{"churn:grid", "", "", false},
		{"phy:collision:grid", "", "", false},
		{"phy:cd:churn:grid", "", "", false},
	}
	for _, c := range cases {
		model, class, ok := SplitPhySpec(c.spec)
		if model != c.model || class != c.class || ok != c.ok {
			t.Errorf("SplitPhySpec(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.spec, model, class, ok, c.model, c.class, c.ok)
		}
	}
}

// TestPhySinrDeploymentFlows pins the geometry plumbing: ByNameWithPoints
// and ScheduleByName must agree on the deployment, the schedule must expose
// it as a phy.PositionSource, and the skeleton graph must be the unit-disk
// connectivity graph of those points (the default decode range is 1).
func TestPhySinrDeploymentFlows(t *testing.T) {
	g, pts, err := ByNameWithPoints("phy:sinr", 48, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != g.N() {
		t.Fatalf("%d points for %d nodes", len(pts), g.N())
	}
	if !g.Freeze().Equal(UDG(pts, 1).Freeze()) {
		t.Fatal("skeleton is not the unit-disk graph of the returned points")
	}
	if !g.Freeze().Equal(SINRConnectivity(pts, phy.SINRParams{}).Freeze()) {
		t.Fatal("SINRConnectivity at default params differs from the unit-disk skeleton")
	}
	sched, err := ScheduleByName("phy:sinr", 48, 0, 1, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !sched.CSR(0).Equal(g.Freeze()) {
		t.Fatal("schedule epoch 0 differs from ByName's skeleton")
	}
	spts := sched.PositionsAt(0)
	if len(spts) != len(pts) {
		t.Fatalf("schedule carries %d positions, want %d", len(spts), len(pts))
	}
	for i := range pts {
		if pts[i].Dist(spts[i]) != 0 {
			t.Fatalf("position %d differs between ByNameWithPoints and the schedule", i)
		}
	}
	// Mobile schedules carry positions per epoch.
	mob, err := ScheduleByName("mobile:udg", 48, 3, 8, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if mob.PositionsAt(0) == nil || mob.PositionsAt(1<<20) == nil {
		t.Fatal("mobile schedule carries no positions")
	}
	// Non-geometric schedules do not.
	ch, err := ScheduleByName("churn:grid", 48, 3, 8, 0.25, 11)
	if err != nil {
		t.Fatal(err)
	}
	if ch.PositionsAt(0) != nil {
		t.Fatal("churn schedule unexpectedly carries positions")
	}
}
