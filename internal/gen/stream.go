package gen

// Streaming direct-to-CSR generation — the million-node path (DESIGN.md
// §11). The Builder route stages every edge twice (us/vs arrays) and carves
// a Graph with n slice headers before the engines re-freeze it; at n = 10⁶
// those intermediates dominate peak memory. udgStreamCSR instead builds the
// frozen form directly from the grid buckets in two counting passes —
// degree count → prefix offsets → fill — so the only O(m) allocation is the
// final edge array, and no graph.Graph or candidate staging ever exists.
//
// Equivalence contract (pinned by stream_test.go and
// FuzzStreamCSRVsBuilder): the streamed CSR is list-for-list identical to
// UDG(pts, radius).Freeze(). Both paths enumerate candidates from the same
// geoGrid2D buckets and share the exact per-pair predicate
// fl(sqrt(fl(fl(dx²)+fl(dy²)))) ≤ radius, which is symmetric bit-for-bit
// (negating dx, dy leaves their squares unchanged), so counting (i,j) from
// i's side and (j,i) from j's side agree. The Builder's lexicographic edge
// order yields globally ascending lists; the streamed fill emits ring-
// ordered runs and sorts each vertex segment ascending, landing on the same
// canonical lists.

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// StreamThreshold is the vertex count at and above which UDG routes through
// the streaming direct-to-CSR build instead of the Builder. Below it the
// Builder's staging cost is noise; above it the avoided intermediates are
// the difference between one and several copies of the edge set in flight.
const StreamThreshold = 1 << 15

// largeUDGThreshold is where the canonical "udg" deployment switches from
// the historical fixed degree target to the connectivity-scaled one. 4096
// is the historical serve.MaxN: every "udg" scenario reachable before the
// streaming ceiling — service specs, experiments, benches, goldens — sits
// at or below it, so the fixed target is preserved exactly where
// reproductions exist and nowhere a connected deployment can't be drawn
// (at n = 4096 the target 8 already trails ln n ≈ 8.3; a few thousand
// nodes higher, 60 connectivity retries fail essentially always).
const largeUDGThreshold = 4097

// UDGDegTarget returns the expected-degree target for the canonical "udg"
// deployment at n nodes. Random geometric graphs are connected whp only
// when average degree exceeds ln n, so the historical fixed target of 8 —
// kept verbatim below largeUDGThreshold so every existing (name, n, seed)
// scenario reproduces byte-identically — gives way to ln n + 3 above it,
// where degree-8 deployments are disconnected essentially always and the
// old behavior was 60 futile tries followed by an error.
func UDGDegTarget(n int) float64 {
	if n < largeUDGThreshold {
		return 8
	}
	return math.Log(float64(n)) + 3
}

// UDGCSR builds the unit disk graph on pts directly in frozen CSR form via
// the streaming two-pass build. ok is false — callers fall back to
// UDG(...).Freeze() — exactly when the grid index declines the deployment
// (non-2-D, non-finite, degenerate radius). The result is list-for-list
// identical to UDG(pts, radius).Freeze().
func UDGCSR(pts []Point, radius float64) (*graph.CSR, bool) {
	return udgStreamCSR(pts, radius)
}

// udgStreamCSR is the streaming build: pass 1 counts every vertex's full
// degree (each pair evaluated from both endpoints — the predicate is
// symmetric bit-for-bit, so the counts agree), the CSRBuilder turns counts
// into offsets, pass 2 re-walks the same buckets filling arcs, and a final
// per-vertex sort lands on the Builder path's canonical ascending lists.
func udgStreamCSR(pts []Point, radius float64) (*graph.CSR, bool) {
	gg, ok := newGeoGrid2D(pts, radius)
	if !ok {
		return nil, false
	}
	n := len(pts)
	xs, ys := gg.xs, gg.ys
	deg := make([]int32, n)
	for i := 0; i < n; i++ {
		xi, yi := xs[i], ys[i]
		d := int32(0)
		gg.ring(i, func(nodes []int32) {
			for _, j := range nodes {
				if j == int32(i) {
					continue
				}
				dx := xi - xs[j]
				dy := yi - ys[j]
				if math.Sqrt(dx*dx+dy*dy) <= radius {
					d++
				}
			}
		})
		deg[i] = d
	}
	b := graph.NewCSRBuilder(deg)
	for i := 0; i < n; i++ {
		xi, yi := xs[i], ys[i]
		gg.ring(i, func(nodes []int32) {
			for _, j := range nodes {
				if j == int32(i) {
					continue
				}
				dx := xi - xs[j]
				dy := yi - ys[j]
				if math.Sqrt(dx*dx+dy*dy) <= radius {
					b.Arc(int32(i), j)
				}
			}
		})
	}
	b.SortLists()
	return b.Finish(), true
}

// BuildCSR is the graph-free counterpart of ByNameWithPoints for the
// streaming-capable classes: for "udg" and "phy:sinr" it draws the same
// deployment ByNameWithPoints would (same seed derivation, same retry
// discipline, so the graph is list-for-list the one ByName builds) but
// assembles it directly in CSR form, packing the adjacency
// (graph.CompactThreshold) once n is large enough for the ~3× edge-storage
// saving to matter. Every other spec falls back to ByNameWithPoints +
// Freeze — correct, just not streaming.
func BuildCSR(name string, n int, seed uint64) (*graph.CSR, []Point, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("gen: need n ≥ 1, got %d", n)
	}
	switch name {
	case "udg", "phy:sinr":
		c, pts, err := connectedUDGCSR(n, UDGDegTarget(n), 60, xrand.New(seed^0x517cc1b727220a95))
		if err != nil {
			return nil, nil, err
		}
		if n >= graph.CompactThreshold {
			c = c.Pack()
		}
		return c, pts, nil
	}
	g, pts, err := ByNameWithPoints(name, n, seed)
	if err != nil {
		return nil, nil, err
	}
	return g.Freeze(), pts, nil
}

// connectedUDGCSR is ConnectedUDG on the streaming path: identical point
// draws and retry discipline (so BuildCSR and ByNameWithPoints agree on the
// deployment for a given seed), with connectivity checked on the CSR
// directly.
func connectedUDGCSR(n int, degTarget float64, tries int, rng *xrand.RNG) (*graph.CSR, []Point, error) {
	side := math.Sqrt(float64(n) * math.Pi / degTarget)
	for t := 0; t < tries; t++ {
		pts := UniformPoints(n, 2, side, rng)
		c, ok := udgStreamCSR(pts, 1)
		if !ok {
			c = UDG(pts, 1).Freeze()
		}
		if c.Connected() {
			return c, pts, nil
		}
	}
	return nil, nil, fmt.Errorf("gen: no connected UDG(n=%d, deg=%v) in %d tries", n, degTarget, tries)
}
