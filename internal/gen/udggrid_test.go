package gen

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

func sameAdjacency(t *testing.T, got, want *graph.Graph, label string) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("%s: n = %d, want %d", label, got.N(), want.N())
	}
	for v := 0; v < want.N(); v++ {
		g, w := got.Neighbors(v), want.Neighbors(v)
		if len(g) != len(w) {
			t.Fatalf("%s: vertex %d degree %d, want %d (%v vs %v)", label, v, len(g), len(w), g, w)
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("%s: vertex %d adjacency[%d] = %d, want %d", label, v, i, g[i], w[i])
			}
		}
	}
}

// TestUDGGridMatchesQuadratic pins the fast-path contract: the bucketed
// builder must reproduce the quadratic scan list-for-list, not just as an
// edge set — downstream parameter estimation iterates adjacency in order.
func TestUDGGridMatchesQuadratic(t *testing.T) {
	rng := xrand.New(11)
	for _, n := range []int{1, 2, 37, 300} {
		for _, radius := range []float64{0.3, 1, 2.5} {
			side := math.Sqrt(float64(n+1)) * 1.5
			pts := UniformPoints(n, 2, side, rng)
			fast, ok := udgGrid2D(pts, radius)
			want := thresholdGraph(pts, radius, Point.Dist)
			if !ok {
				// Degenerate geometry (radius covers the box): the public
				// wrapper falls back; nothing to compare.
				continue
			}
			sameAdjacency(t, fast, want, "uniform")
			sameAdjacency(t, UDG(pts, radius), want, "wrapper")
		}
	}
}

// TestUDGGridBoundaryPairs puts vertices exactly radius apart — the d ==
// radius boundary is an edge (the contract is ≤) and must not be lost to
// cell pruning, including pairs that straddle a cell border.
func TestUDGGridBoundaryPairs(t *testing.T) {
	r := 1.0
	pts := []Point{
		{0, 0}, {r, 0}, // exactly r apart, adjacent cells
		{10, 10}, {10, 10 + r}, // exactly r apart vertically
		// One ulp beyond r: no edge. Anchored at x=0 so the offset is not
		// absorbed by rounding the sum (20 + (1+ulp) rounds back to 21).
		{0, 30}, {math.Nextafter(r, 2), 30},
		{5, 5}, {5, 5}, // co-located: distance 0
	}
	fast, ok := udgGrid2D(pts, r)
	if !ok {
		t.Fatal("grid path refused a spread-out deployment")
	}
	sameAdjacency(t, fast, thresholdGraph(pts, r, Point.Dist), "boundary")
	if !fast.HasEdge(0, 1) || !fast.HasEdge(2, 3) {
		t.Fatal("exact-radius pair lost")
	}
	if fast.HasEdge(4, 5) {
		t.Fatal("beyond-radius pair connected")
	}
	if !fast.HasEdge(6, 7) {
		t.Fatal("co-located pair lost")
	}
}

// TestUDGGridFallbacks: inputs the grid cannot handle route to the
// quadratic path and still produce correct graphs through the wrapper.
func TestUDGGridFallbacks(t *testing.T) {
	if _, ok := udgGrid2D(UniformPoints(8, 3, 4, xrand.New(1)), 1); ok {
		t.Fatal("grid path accepted 3-D points")
	}
	if _, ok := udgGrid2D([]Point{{0, 0}, {math.NaN(), 1}, {9, 9}}, 1); ok {
		t.Fatal("grid path accepted NaN coordinates")
	}
	if _, ok := udgGrid2D([]Point{{0, 0}, {5, 5}}, math.Inf(1)); ok {
		t.Fatal("grid path accepted infinite radius")
	}
	if _, ok := udgGrid2D([]Point{{0, 0}, {1, 1}}, -1); ok {
		t.Fatal("grid path accepted negative radius")
	}
	// The wrapper must still produce the right answers for all of these.
	inf := UDG([]Point{{0, 0}, {5, 5}}, math.Inf(1))
	if !inf.HasEdge(0, 1) {
		t.Fatal("infinite radius should connect everything")
	}
	nan := UDG([]Point{{0, 0}, {math.NaN(), 1}, {0.5, 0}}, 1)
	if nan.HasEdge(0, 1) || !nan.HasEdge(0, 2) {
		t.Fatal("NaN fallback produced wrong edges")
	}
}

// TestUDGGridSparseCoarsening drives the cell-table cap: a huge area with a
// tiny radius would want millions of cells; the coarsened grid must still
// match the reference.
func TestUDGGridSparseCoarsening(t *testing.T) {
	rng := xrand.New(7)
	pts := UniformPoints(200, 2, 5000, rng)
	// Seed a few close pairs so the graph is not edgeless.
	for i := 0; i < 20; i++ {
		base := pts[i*2]
		pts[i*2+1] = Point{base[0] + rng.Float64()*0.02, base[1] + rng.Float64()*0.02}
	}
	fast, ok := udgGrid2D(pts, 0.015)
	if !ok {
		t.Fatal("grid path refused sparse deployment")
	}
	want := thresholdGraph(pts, 0.015, Point.Dist)
	if want.M() == 0 {
		t.Fatal("test geometry produced no edges; nothing exercised")
	}
	sameAdjacency(t, fast, want, "sparse")
}
