package gen

import (
	"fmt"
	"math"

	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// MobileUDG builds a random-waypoint mobility schedule: n radios with unit
// range are dropped uniformly in a square sized for average degree ~8, and
// between epochs every node moves distance speed (in units of the radio
// range) toward its private waypoint, drawing a fresh uniform waypoint when
// it arrives. Epoch i's topology is the unit-disk graph of the positions at
// time i, and the positions themselves are carried on the schedule
// (dyn.FromGraphsWithPositions / Schedule.PositionsAt), so geometric
// reception models — phy.SINR via phy.NewMobileSINR — follow the motion.
// Because positions matter to those models even when the connectivity graph
// is unchanged, mobile epochs never collapse. The initial placement is
// retried until connected (the usual generator convention); later epochs
// may disconnect and reconnect freely — that is the phenomenon mobility
// experiments measure.
//
// The whole trajectory is a pure function of (n, epochs, speed, rng state),
// keeping the dyn determinism contract.
func MobileUDG(n, epochs, epochLen int, speed float64, rng *xrand.RNG) (*dyn.Schedule, error) {
	if n < 1 || epochs < 0 || epochLen <= 0 {
		return nil, fmt.Errorf("gen: MobileUDG needs n >= 1, epochs >= 0, epochLen > 0 (got %d, %d, %d)", n, epochs, epochLen)
	}
	if speed < 0 {
		return nil, fmt.Errorf("gen: MobileUDG needs speed >= 0, got %g", speed)
	}
	side := math.Sqrt(float64(n) * math.Pi / 8)
	var pts []Point
	var g0 *graph.Graph
	for t := 0; ; t++ {
		pts = UniformPoints(n, 2, side, rng)
		g0 = UDG(pts, 1)
		if g0.Connected() {
			break
		}
		if t >= 60 {
			return nil, fmt.Errorf("gen: no connected initial UDG(n=%d) found", n)
		}
	}
	waypoints := UniformPoints(n, 2, side, rng)
	graphs := []*graph.Graph{g0}
	positions := [][]Point{clonePoints(pts)}
	for e := 1; e <= epochs; e++ {
		for i := range pts {
			pts[i], waypoints[i] = advance(pts[i], waypoints[i], speed, side, rng)
		}
		graphs = append(graphs, UDG(pts, 1))
		positions = append(positions, clonePoints(pts))
	}
	return dyn.FromGraphsWithPositions(epochLen, graphs, positions)
}

// clonePoints deep-copies a point set: the mobility loop mutates pts in
// place, while the schedule needs one immutable snapshot per epoch.
func clonePoints(pts []Point) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = append(Point(nil), p...)
	}
	return out
}

// advance moves p distance speed toward its waypoint, redrawing the
// waypoint whenever it is reached within this move.
func advance(p, wp Point, speed, side float64, rng *xrand.RNG) (Point, Point) {
	for speed > 0 {
		d := p.Dist(wp)
		if d > speed {
			frac := speed / d
			for k := range p {
				p[k] += (wp[k] - p[k]) * frac
			}
			break
		}
		p = wp
		speed -= d
		wp = UniformPoints(1, 2, side, rng)[0]
	}
	return p, wp
}
