package gen

import "testing"

func TestByNameAllClasses(t *testing.T) {
	for _, name := range ClassNames {
		g, err := ByName(name, 40, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.N() < 2 {
			t.Fatalf("%s: too small (%d nodes)", name, g.N())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("nosuch", 10, 1); err == nil {
		t.Fatal("want unknown-class error")
	}
	if _, err := ByName("path", 0, 1); err == nil {
		t.Fatal("want n error")
	}
}

func TestByNameDeterministic(t *testing.T) {
	a, err := ByName("gnp", 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByName("gnp", 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatalf("same seed produced different graphs: %d vs %d edges", a.M(), b.M())
	}
	for v := 0; v < a.N(); v++ {
		for _, w := range a.Neighbors(v) {
			if !b.HasEdge(v, int(w)) {
				t.Fatalf("edge {%d,%d} missing in replay", v, w)
			}
		}
	}
}

func TestByNameSeedsVary(t *testing.T) {
	a, err := ByName("udg", 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByName("udg", 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.M() == b.M() && sameEdges(a, b) {
		t.Fatal("different seeds produced identical UDGs")
	}
}

func sameEdges(a, b interface {
	N() int
	Neighbors(int) []int32
	HasEdge(int, int) bool
}) bool {
	for v := 0; v < a.N(); v++ {
		for _, w := range a.Neighbors(v) {
			if !b.HasEdge(v, int(w)) {
				return false
			}
		}
	}
	return true
}
