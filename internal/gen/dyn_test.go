package gen

import (
	"testing"

	"repro/internal/xrand"
)

func TestScheduleByNameKinds(t *testing.T) {
	for _, spec := range []string{"churn:grid", "churn:gnp", "fault:cycle", "fault:tree", "mobile:udg"} {
		s, err := ScheduleByName(spec, 64, 4, 10, 0.25, 9)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if s.N() == 0 || s.Epochs() < 1 {
			t.Fatalf("%s: degenerate schedule %d nodes %d epochs", spec, s.N(), s.Epochs())
		}
		// ByName's skeleton view must be exactly the schedule's epoch 0 —
		// including for mobile:udg, whose placement convention differs from
		// the static "udg" class.
		if spec == "churn:grid" || spec == "mobile:udg" {
			base, err := ByName(spec, 64, 9)
			if err != nil {
				t.Fatal(err)
			}
			if !s.CSR(0).Equal(base.Freeze()) {
				t.Fatalf("%s: epoch-0 snapshot differs from ByName's skeleton", spec)
			}
		}
	}
}

func TestScheduleByNameStaticFallback(t *testing.T) {
	s, err := ScheduleByName("grid", 25, 4, 10, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Epochs() != 1 {
		t.Fatalf("static class produced %d epochs, want 1", s.Epochs())
	}
}

func TestScheduleByNameErrors(t *testing.T) {
	if _, err := ScheduleByName("warp:grid", 16, 2, 5, 0, 1); err == nil {
		t.Fatal("want unknown-kind error")
	}
	if _, err := ScheduleByName("churn:nosuch", 16, 2, 5, 0, 1); err == nil {
		t.Fatal("want unknown-class error")
	}
	if _, err := ScheduleByName("mobile:grid", 16, 2, 5, 0, 1); err == nil {
		t.Fatal("want mobile-class error")
	}
	if _, err := ByName("warp:grid", 16, 1); err == nil {
		t.Fatal("want ByName unknown-kind error")
	}
}

func TestScheduleByNameDeterministic(t *testing.T) {
	for _, spec := range []string{"churn:grid", "fault:gnp", "mobile:udg"} {
		a, err := ScheduleByName(spec, 48, 5, 8, 0.3, 77)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ScheduleByName(spec, 48, 5, 8, 0.3, 77)
		if err != nil {
			t.Fatal(err)
		}
		if a.Epochs() != b.Epochs() {
			t.Fatalf("%s: epoch counts differ (%d vs %d)", spec, a.Epochs(), b.Epochs())
		}
		for i := 0; i < a.Epochs(); i++ {
			if a.Start(i) != b.Start(i) || !a.CSR(i).Equal(b.CSR(i)) {
				t.Fatalf("%s: epoch %d differs between identical builds", spec, i)
			}
		}
	}
}

func TestMobileUDGMoves(t *testing.T) {
	s, err := MobileUDG(60, 6, 10, 0.5, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if s.Epochs() < 2 {
		t.Fatal("half-range-per-epoch mobility never rewired the UDG")
	}
	// Zero speed must freeze the topology.
	s0, err := MobileUDG(60, 6, 10, 0, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if s0.Epochs() != 1 {
		t.Fatalf("zero-speed mobility produced %d epochs, want 1", s0.Epochs())
	}
}
