package gen

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/phy"
	"repro/internal/xrand"
)

// ClassNames lists the static graph classes ByName understands.
var ClassNames = []string{
	"path", "cycle", "clique", "star", "grid", "tree", "gnp", "udg",
	"quasiudg", "grn", "cliquechain", "lollipop", "hypercube", "regular",
}

// DynClassNames lists the dynamic-topology specs ScheduleByName understands:
// "churn:<class>" and "fault:<class>" wrap any static class in node-churn or
// edge-fault epochs, and "mobile:udg" is random-waypoint mobility.
var DynClassNames = []string{"churn:<class>", "fault:<class>", "mobile:udg"}

// PhyClassNames lists the physical-layer specs the grammar understands:
// "phy:sinr" is a connected-UDG deployment run under SINR reception
// (DESIGN.md §7) and "phy:cd:<class>" runs any static class under the
// collision-detection model. There is deliberately no "phy:collision:…"
// spelling — the bare class name IS the collision model, and one scenario
// must have one canonical form (the serve content hash depends on it).
var PhyClassNames = []string{"phy:sinr", "phy:cd:<class>"}

// ByName builds a graph of roughly n nodes from a named class, used by the
// CLIs and examples. Randomized classes derive their randomness from seed.
// Dynamic specs ("churn:grid", "fault:gnp", "mobile:udg") are accepted too
// and yield the epoch-0 skeleton — the underlying static class — so static
// consumers keep working; ScheduleByName builds the full epoch schedule.
// Physical-layer specs likewise yield their skeleton: "phy:cd:<class>" is
// the class itself and "phy:sinr" is the deployment's default-range
// connectivity graph (ByNameWithPoints also returns the positions a SINR
// model needs).
func ByName(name string, n int, seed uint64) (*graph.Graph, error) {
	g, _, err := ByNameWithPoints(name, n, seed)
	return g, err
}

// ByNameWithPoints is ByName for callers that also need the deployment
// geometry: for the geometric classes with a canonical placement ("udg",
// "phy:sinr") it returns the drawn positions alongside the graph; for every
// other spec points is nil. The graph is identical to ByName's for the same
// (name, n, seed).
func ByNameWithPoints(name string, n int, seed uint64) (*graph.Graph, []Point, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("gen: need n ≥ 1, got %d", n)
	}
	if kind, class, ok := splitDynSpec(name); ok {
		if err := validateDynSpec(name, kind, class); err != nil {
			return nil, nil, err
		}
		if kind == "mobile" {
			// The mobile classes have their own placement convention, so
			// the skeleton must come from the schedule itself: a zero-epoch
			// build shares the initial point draw with every full build of
			// the same seed (motion parameters don't touch it).
			sched, err := ScheduleByName(name, n, 0, 1, 0, seed)
			if err != nil {
				return nil, nil, err
			}
			return sched.CSR(0).Graph(), sched.PositionsAt(0), nil
		}
		if kind == "phy" {
			if class == "sinr" {
				// The SINR deployment convention: a connected unit-range UDG
				// at average degree ~8 (connectivity-scaled for huge n, see
				// UDGDegTarget), like the "udg" class but with the points
				// retained for the reception model. The unit disk is the
				// decode range of the default phy.SINRParams; runners with
				// non-default params derive their own connectivity view from
				// the points (SINRConnectivity).
				g, pts, err := ConnectedUDG(n, UDGDegTarget(n), 60, xrand.New(seed^0x517cc1b727220a95))
				return g, pts, err
			}
			return ByNameWithPoints(strings.TrimPrefix(class, "cd:"), n, seed)
		}
		g, err := ByName(class, n, seed)
		return g, nil, err
	}
	if name == "udg" {
		g, pts, err := ConnectedUDG(n, UDGDegTarget(n), 60, xrand.New(seed^0x517cc1b727220a95))
		return g, pts, err
	}
	g, err := byStaticName(name, n, seed)
	return g, nil, err
}

// byStaticName builds the bare static classes. "udg" never reaches it —
// ByNameWithPoints intercepts it to retain the deployment points — so it
// has no case here.
func byStaticName(name string, n int, seed uint64) (*graph.Graph, error) {
	rng := xrand.New(seed ^ 0x517cc1b727220a95)
	switch name {
	case "path":
		return Path(n), nil
	case "cycle":
		return Cycle(n), nil
	case "clique":
		return Clique(n), nil
	case "star":
		return Star(n), nil
	case "grid":
		side := int(math.Round(math.Sqrt(float64(n))))
		if side < 1 {
			side = 1
		}
		return Grid(side, side), nil
	case "tree":
		return RandomTree(n, rng), nil
	case "gnp":
		return GNPConnected(n, math.Min(1, 8/float64(n)), 60, rng)
	case "quasiudg":
		side := math.Sqrt(float64(n) * math.Pi / 8)
		for t := 0; t < 60; t++ {
			pts := UniformPoints(n, 2, side, rng)
			g, err := QuasiUDG(pts, 1, 1.5, 0.5, rng)
			if err != nil {
				return nil, err
			}
			if g.Connected() {
				return g, nil
			}
		}
		return nil, fmt.Errorf("gen: no connected quasi-UDG(n=%d) found", n)
	case "grn":
		side := math.Sqrt(float64(n) * math.Pi / 10)
		for t := 0; t < 60; t++ {
			pts := UniformPoints(n, 2, side, rng)
			g, _, err := GeometricRadioNetwork(pts, 1, 1.8, rng)
			if err != nil {
				return nil, err
			}
			if g.Connected() {
				return g, nil
			}
		}
		return nil, fmt.Errorf("gen: no connected GRN(n=%d) found", n)
	case "cliquechain":
		k := int(math.Round(math.Sqrt(float64(n))))
		if k < 2 {
			k = 2
		}
		return CliqueChain(k, (n+k-1)/k), nil
	case "hypercube":
		d := 1
		for 1<<uint(d) < n {
			d++
		}
		return Hypercube(d), nil
	case "regular":
		if n%2 != 0 {
			n++
		}
		return RandomRegular(n, 4, 300, rng)
	case "lollipop":
		head := n / 2
		if head < 2 {
			head = 2
		}
		return Lollipop(head, n-head), nil
	default:
		return nil, fmt.Errorf("gen: unknown graph class %q (known: %v)", name, ClassNames)
	}
}

// ScheduleByName builds a dynamic-topology schedule from a "<kind>:<class>"
// spec: "churn:<class>" takes nodes down per epoch with probability rate,
// "fault:<class>" fails edges per epoch with probability rate, and
// "mobile:udg" moves nodes rate radio-ranges per epoch under random-waypoint
// mobility. epochs counts the mutated epochs after the pristine epoch 0 and
// epochLen is each epoch's length in time-steps; rate <= 0 selects the
// default 0.15. Like ByName, the result is a pure function of the
// arguments. A bare static class name is accepted and yields a single-epoch
// (static) schedule, so callers can treat every spec uniformly; so are the
// physical-layer specs, whose schedules are static too — "phy:sinr"
// additionally carries the deployment positions, so the schedule can feed a
// mobile-capable SINR model (phy.PositionSource).
func ScheduleByName(spec string, n, epochs, epochLen int, rate float64, seed uint64) (*dyn.Schedule, error) {
	if rate <= 0 {
		rate = DefaultDynRate
	}
	rng := xrand.New(seed ^ 0xd1a2b3c4d5e6f708)
	kind, class, ok := splitDynSpec(spec)
	if !ok {
		base, err := ByName(spec, n, seed)
		if err != nil {
			return nil, err
		}
		return dyn.New(base, nil)
	}
	if err := validateDynSpec(spec, kind, class); err != nil {
		return nil, err
	}
	if kind == "phy" {
		if epochLen < 1 {
			epochLen = 1
		}
		base, pts, err := ByNameWithPoints(spec, n, seed)
		if err != nil {
			return nil, err
		}
		if pts == nil {
			return dyn.New(base, nil)
		}
		return dyn.FromGraphsWithPositions(epochLen, []*graph.Graph{base}, [][]phy.Point{pts})
	}
	if err := ValidateRate(kind, rate); err != nil {
		return nil, err
	}
	if kind == "mobile" {
		return MobileUDG(n, epochs, epochLen, rate, rng)
	}
	base, err := ByName(class, n, seed)
	if err != nil {
		return nil, err
	}
	switch kind {
	case "churn":
		return dyn.Churn(base, epochs, epochLen, rate, rng)
	default: // "fault"
		return dyn.EdgeFaults(base, epochs, epochLen, rate, rng)
	}
}

// DefaultDynRate is the rate ScheduleByName substitutes for rate ≤ 0 —
// exported so canonicalizing callers (the serve subsystem) make the same
// default explicit instead of hard-coding a copy that could drift.
const DefaultDynRate = 0.15

// SplitSpec splits a "<kind>:<class>" dynamic spec into its kind and
// underlying class; dynamic is false for bare static class names. It is
// the exported face of the spec grammar so callers (the serve subsystem,
// the CLIs) can classify specs without re-parsing.
func SplitSpec(name string) (kind, class string, dynamic bool) {
	return splitDynSpec(name)
}

// ValidateRate checks a dynamic-spec rate: churn/fault rates are
// per-epoch probabilities (≤ 1; ≤ 0 selects DefaultDynRate before this
// check), while mobile's rate is a speed in radio-ranges per epoch and
// may exceed 1. Every rate must be finite.
func ValidateRate(kind string, rate float64) error {
	if math.IsNaN(rate) || math.IsInf(rate, 0) {
		return fmt.Errorf("gen: %s rate %v must be finite", kind, rate)
	}
	if kind != "mobile" && rate > 1 {
		return fmt.Errorf("gen: %s rate %v out of range (0, 1]", kind, rate)
	}
	return nil
}

// ValidateSpec checks that name is a well-formed graph spec — a known
// static class, or a known dynamic or physical-layer kind wrapping one —
// without building anything. It returns exactly the error
// ByName/ScheduleByName would, so servers can reject malformed specs up
// front with a clean client error.
func ValidateSpec(name string) error {
	if kind, class, ok := splitDynSpec(name); ok {
		if err := validateDynSpec(name, kind, class); err != nil {
			return err
		}
		if kind == "mobile" || name == "phy:sinr" {
			return nil
		}
		if kind == "phy" {
			return ValidateSpec(strings.TrimPrefix(class, "cd:"))
		}
		return ValidateSpec(class)
	}
	for _, c := range ClassNames {
		if name == c {
			return nil
		}
	}
	return fmt.Errorf("gen: unknown graph class %q (known: %v)", name, ClassNames)
}

// SplitPhySpec splits a physical-layer spec: "phy:sinr" yields
// ("sinr", "udg"), "phy:cd:<class>" yields ("cd", class). ok is false for
// everything else, including malformed phy: specs — callers branching on
// it validate separately.
func SplitPhySpec(name string) (model, class string, ok bool) {
	kind, rest, cut := strings.Cut(name, ":")
	if !cut || kind != "phy" {
		return "", "", false
	}
	if rest == "sinr" {
		return "sinr", "udg", true
	}
	if c, isCD := strings.CutPrefix(rest, "cd:"); isCD && validateDynSpec(name, "phy", rest) == nil {
		return "cd", c, true
	}
	return "", "", false
}

// validateDynSpec checks a split dynamic or phy spec's kind and shape.
// Nested specs ("churn:churn:grid", "phy:cd:churn:grid") are rejected
// everywhere: they would execute identically to (or be indistinguishable
// from) another spelling but serialize — and content-hash — differently,
// breaking one-canonical-form-per-scenario.
func validateDynSpec(spec, kind, class string) error {
	if err := validateDynKind(kind); err != nil {
		return err
	}
	switch kind {
	case "mobile":
		if class != "udg" {
			return fmt.Errorf("gen: mobility spec %q: only mobile:udg is supported", spec)
		}
		return nil
	case "phy":
		if class == "sinr" {
			return nil
		}
		if cdClass, ok := strings.CutPrefix(class, "cd:"); ok {
			if strings.Contains(cdClass, ":") {
				return fmt.Errorf("gen: nested phy spec %q: phy:cd must wrap a static class", spec)
			}
			return nil
		}
		return fmt.Errorf("gen: unknown phy spec %q (known: %v; the collision model is the bare class name)", spec, PhyClassNames)
	}
	if strings.Contains(class, ":") {
		return fmt.Errorf("gen: nested dynamic spec %q: %s must wrap a static class", spec, kind)
	}
	return nil
}

// splitDynSpec splits "<kind>:<class>" dynamic specs; ok is false for bare
// static class names.
func splitDynSpec(name string) (kind, class string, ok bool) {
	kind, class, ok = strings.Cut(name, ":")
	return kind, class, ok
}

// validateDynKind rejects unknown dynamic-spec kinds.
func validateDynKind(kind string) error {
	switch kind {
	case "churn", "fault", "mobile", "phy":
		return nil
	default:
		return fmt.Errorf("gen: unknown dynamic kind %q (known: %v and %v)", kind, DynClassNames, PhyClassNames)
	}
}
