package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// ClassNames lists the graph classes ByName understands.
var ClassNames = []string{
	"path", "cycle", "clique", "star", "grid", "tree", "gnp", "udg",
	"quasiudg", "grn", "cliquechain", "lollipop", "hypercube", "regular",
}

// ByName builds a graph of roughly n nodes from a named class, used by the
// CLIs and examples. Randomized classes derive their randomness from seed.
func ByName(name string, n int, seed uint64) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: need n ≥ 1, got %d", n)
	}
	rng := xrand.New(seed ^ 0x517cc1b727220a95)
	switch name {
	case "path":
		return Path(n), nil
	case "cycle":
		return Cycle(n), nil
	case "clique":
		return Clique(n), nil
	case "star":
		return Star(n), nil
	case "grid":
		side := int(math.Round(math.Sqrt(float64(n))))
		if side < 1 {
			side = 1
		}
		return Grid(side, side), nil
	case "tree":
		return RandomTree(n, rng), nil
	case "gnp":
		return GNPConnected(n, math.Min(1, 8/float64(n)), 60, rng)
	case "udg":
		g, _, err := ConnectedUDG(n, 8, 60, rng)
		return g, err
	case "quasiudg":
		side := math.Sqrt(float64(n) * math.Pi / 8)
		for t := 0; t < 60; t++ {
			pts := UniformPoints(n, 2, side, rng)
			g, err := QuasiUDG(pts, 1, 1.5, 0.5, rng)
			if err != nil {
				return nil, err
			}
			if g.Connected() {
				return g, nil
			}
		}
		return nil, fmt.Errorf("gen: no connected quasi-UDG(n=%d) found", n)
	case "grn":
		side := math.Sqrt(float64(n) * math.Pi / 10)
		for t := 0; t < 60; t++ {
			pts := UniformPoints(n, 2, side, rng)
			g, _, err := GeometricRadioNetwork(pts, 1, 1.8, rng)
			if err != nil {
				return nil, err
			}
			if g.Connected() {
				return g, nil
			}
		}
		return nil, fmt.Errorf("gen: no connected GRN(n=%d) found", n)
	case "cliquechain":
		k := int(math.Round(math.Sqrt(float64(n))))
		if k < 2 {
			k = 2
		}
		return CliqueChain(k, (n+k-1)/k), nil
	case "hypercube":
		d := 1
		for 1<<uint(d) < n {
			d++
		}
		return Hypercube(d), nil
	case "regular":
		if n%2 != 0 {
			n++
		}
		return RandomRegular(n, 4, 300, rng)
	case "lollipop":
		head := n / 2
		if head < 2 {
			head = 2
		}
		return Lollipop(head, n-head), nil
	default:
		return nil, fmt.Errorf("gen: unknown graph class %q (known: %v)", name, ClassNames)
	}
}
