package gen

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestPathCycleClique(t *testing.T) {
	p := Path(10)
	if p.M() != 9 {
		t.Fatalf("path edges %d", p.M())
	}
	d, err := p.Diameter()
	if err != nil || d != 9 {
		t.Fatalf("path diameter %d err %v", d, err)
	}
	c := Cycle(10)
	if c.M() != 10 {
		t.Fatalf("cycle edges %d", c.M())
	}
	k := Clique(6)
	if k.M() != 15 {
		t.Fatalf("clique edges %d", k.M())
	}
	kd, _ := k.Diameter()
	if kd != 1 {
		t.Fatalf("clique diameter %d", kd)
	}
}

func TestStar(t *testing.T) {
	s := Star(8)
	if s.Degree(0) != 7 || s.M() != 7 {
		t.Fatalf("star degree %d edges %d", s.Degree(0), s.M())
	}
	a, ok := s.IndependenceNumberExact()
	if !ok || a != 7 {
		t.Fatalf("α(star) = %d", a)
	}
}

func TestGrid(t *testing.T) {
	g := Grid(4, 5)
	if g.N() != 20 {
		t.Fatalf("N = %d", g.N())
	}
	// 4*(5-1) horizontal + 5*(4-1) vertical = 16+15 = 31
	if g.M() != 31 {
		t.Fatalf("M = %d, want 31", g.M())
	}
	d, err := g.Diameter()
	if err != nil || d != 3+4 {
		t.Fatalf("grid diameter %d err %v", d, err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomTree(t *testing.T) {
	rng := xrand.New(1)
	g := RandomTree(50, rng)
	if g.M() != 49 {
		t.Fatalf("tree edges %d", g.M())
	}
	if !g.Connected() {
		t.Fatal("tree disconnected")
	}
}

func TestGNPEdgeDensity(t *testing.T) {
	rng := xrand.New(2)
	const n, p = 300, 0.05
	g := GNP(n, p, rng)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	want := p * float64(n) * float64(n-1) / 2
	got := float64(g.M())
	if math.Abs(got-want) > 4*math.Sqrt(want) {
		t.Fatalf("G(n,p) edges %v, want ~%v", got, want)
	}
}

func TestGNPExtremes(t *testing.T) {
	rng := xrand.New(3)
	if g := GNP(20, 0, rng); g.M() != 0 {
		t.Fatal("G(n,0) should be empty")
	}
	if g := GNP(10, 1, rng); g.M() != 45 {
		t.Fatalf("G(n,1) edges %d, want 45", g.M())
	}
}

func TestGNPConnected(t *testing.T) {
	rng := xrand.New(4)
	g, err := GNPConnected(100, 0.1, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("not connected")
	}
	if _, err := GNPConnected(100, 0.0001, 3, rng); err == nil {
		t.Fatal("expected failure for hopeless density")
	}
}

func TestUDGSymmetricAndThreshold(t *testing.T) {
	pts := []Point{{0, 0}, {0.5, 0}, {2, 0}, {2.4, 0}}
	g := UDG(pts, 1)
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 3) {
		t.Fatal("close pairs must connect")
	}
	if g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Fatal("far pairs must not connect")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConnectedUDG(t *testing.T) {
	rng := xrand.New(5)
	g, pts, err := ConnectedUDG(200, 8, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() || len(pts) != 200 {
		t.Fatal("bad connected UDG")
	}
	// Average degree should be within a factor ~2.5 of the target.
	avg := 2 * float64(g.M()) / 200
	if avg < 3 || avg > 21 {
		t.Fatalf("average degree %v far from target 8", avg)
	}
}

func TestQuasiUDGRespectsBounds(t *testing.T) {
	rng := xrand.New(6)
	pts := UniformPoints(150, 2, 6, rng)
	g, err := QuasiUDG(pts, 1, 1.8, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			d := pts[i].Dist(pts[j])
			if d < 1 && !g.HasEdge(i, j) {
				t.Fatalf("pair %d-%d at dist %v < r must be edge", i, j, d)
			}
			if d > 1.8 && g.HasEdge(i, j) {
				t.Fatalf("pair %d-%d at dist %v > R must not be edge", i, j, d)
			}
		}
	}
	if _, err := QuasiUDG(pts, 2, 1, 0.5, rng); err == nil {
		t.Fatal("expected error for R < r")
	}
}

func TestGeometricRadioNetworkMutualEdges(t *testing.T) {
	rng := xrand.New(7)
	pts := UniformPoints(120, 2, 5, rng)
	g, ranges, err := GeometricRadioNetwork(pts, 0.8, 1.6, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) != len(pts) {
		t.Fatal("ranges length mismatch")
	}
	for i := range pts {
		if ranges[i] < 0.8 || ranges[i] > 1.6 {
			t.Fatalf("range %v out of bounds", ranges[i])
		}
		for j := i + 1; j < len(pts); j++ {
			d := pts[i].Dist(pts[j])
			mutual := d <= ranges[i] && d <= ranges[j]
			if mutual != g.HasEdge(i, j) {
				t.Fatalf("edge {%d,%d}: mutual=%v edge=%v", i, j, mutual, g.HasEdge(i, j))
			}
		}
	}
	if _, _, err := GeometricRadioNetwork(pts, 0, 1, rng); err == nil {
		t.Fatal("expected error for zero minRange")
	}
}

func TestUnitBallLInf(t *testing.T) {
	pts := []Point{{0, 0}, {0.9, 0.9}, {2, 2}}
	g := UnitBallLInf(pts, 1)
	if !g.HasEdge(0, 1) {
		t.Fatal("ℓ∞ distance 0.9 should connect at radius 1")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("ℓ∞ distance 2 must not connect")
	}
	// Euclidean version would NOT connect 0-1 (dist ≈ 1.27 > 1).
	ge := UDG(pts, 1)
	if ge.HasEdge(0, 1) {
		t.Fatal("euclidean check: expected no edge")
	}
}

func TestCliqueChain(t *testing.T) {
	g := CliqueChain(5, 4)
	if g.N() != 20 {
		t.Fatalf("N = %d", g.N())
	}
	if !g.Connected() {
		t.Fatal("chain disconnected")
	}
	a, ok := g.IndependenceNumberExact()
	if !ok || a != 5 {
		t.Fatalf("α(chain of 5 cliques) = %d, want 5", a)
	}
	d, _ := g.Diameter()
	if d < 5 || d > 15 {
		t.Fatalf("diameter %d outside expected band", d)
	}
}

func TestLollipop(t *testing.T) {
	g := Lollipop(6, 10)
	if g.N() != 16 || !g.Connected() {
		t.Fatal("bad lollipop")
	}
	d, _ := g.Diameter()
	if d != 11 {
		t.Fatalf("lollipop diameter %d, want 11", d)
	}
	a, ok := g.IndependenceNumberExact()
	if !ok || a != 6 {
		// clique contributes 1, tail of 10 contributes 5 → 6 total
		t.Fatalf("α(lollipop) = %d, want 6", a)
	}
}

func TestDoublingTreeBallGraph(t *testing.T) {
	g := DoublingTreeBallGraph(2, 4, 2)
	if g.N() != 16 {
		t.Fatalf("N = %d", g.N())
	}
	// Radius 2 connects exactly sibling pairs (tree distance 2).
	if g.M() != 8 {
		t.Fatalf("M = %d, want 8 sibling edges", g.M())
	}
	gAll := DoublingTreeBallGraph(2, 3, 6)
	if gAll.M() != 8*7/2 {
		t.Fatalf("radius=2·depth should give a clique, M = %d", gAll.M())
	}
}

func TestPointDistProperties(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		if math.Abs(ax) > 1e6 || math.Abs(ay) > 1e6 || math.Abs(bx) > 1e6 || math.Abs(by) > 1e6 {
			return true
		}
		p, q := Point{ax, ay}, Point{bx, by}
		de, di := p.Dist(q), p.DistLInf(q)
		// symmetry and ℓ∞ ≤ ℓ2 ≤ √2·ℓ∞ in 2-D
		return de == q.Dist(p) && di == q.DistLInf(p) &&
			di <= de+1e-9 && de <= math.Sqrt2*di+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 {
		t.Fatalf("N = %d", g.N())
	}
	// Q_d is d-regular with d·2^(d-1) edges and diameter d.
	if g.M() != 4*8 {
		t.Fatalf("M = %d, want 32", g.M())
	}
	for v := 0; v < 16; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree(%d) = %d", v, g.Degree(v))
		}
	}
	d, err := g.Diameter()
	if err != nil || d != 4 {
		t.Fatalf("diameter %d err %v", d, err)
	}
	a, ok := g.IndependenceNumberExact()
	if !ok || a != 8 {
		t.Fatalf("α(Q_4) = %d, want 8", a)
	}
}

func TestRandomRegular(t *testing.T) {
	rng := xrand.New(10)
	g, err := RandomRegular(40, 4, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Random 4-regular graphs on 40 nodes are connected expanders whp.
	if !g.Connected() {
		t.Fatal("disconnected regular graph (unlikely)")
	}
	d, err := g.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	if d > 8 {
		t.Fatalf("expander diameter %d suspiciously large", d)
	}
}

func TestRandomRegularValidation(t *testing.T) {
	rng := xrand.New(11)
	if _, err := RandomRegular(10, 0, 10, rng); err == nil {
		t.Fatal("want degree error")
	}
	if _, err := RandomRegular(5, 3, 10, rng); err == nil {
		t.Fatal("want parity error")
	}
	if _, err := RandomRegular(4, 4, 10, rng); err == nil {
		t.Fatal("want d<n error")
	}
}

func TestUniformPointsInBounds(t *testing.T) {
	rng := xrand.New(8)
	pts := UniformPoints(100, 3, 4.5, rng)
	for _, p := range pts {
		if len(p) != 3 {
			t.Fatal("wrong dimension")
		}
		for _, c := range p {
			if c < 0 || c >= 4.5 {
				t.Fatalf("coordinate %v out of bounds", c)
			}
		}
	}
}
