// Package xrand provides a small, fast, deterministic, splittable
// pseudo-random number generator used throughout the simulator.
//
// Every node in a simulated radio network owns a private RNG split from a
// single experiment seed, so whole experiments are reproducible from one
// integer while nodes remain statistically independent of each other.
//
// The core generator is SplitMix64 (Steele, Lea, Flood; OOPSLA 2014), which
// passes BigCrush, has a full 2^64 period for any seed, and supports cheap
// splitting by hashing the parent state with a distinct stream constant.
package xrand

import "math"

// golden is the 64-bit golden-ratio constant used by SplitMix64.
const golden = 0x9e3779b97f4a7c15

// RNG is a deterministic SplitMix64 pseudo-random generator.
// The zero value is a valid generator seeded with 0.
//
// RNG is not safe for concurrent use; split one RNG per goroutine instead.
type RNG struct {
	state uint64
}

// New returns an RNG seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// State exposes the generator's full internal state — one word, by
// SplitMix64's construction — for checkpointing. A generator restored with
// SetState(State()) produces the identical future stream, which is what
// lets engine checkpoints (radio.Checkpoint) capture per-node randomness
// exactly.
func (r *RNG) State() uint64 { return r.state }

// SetState overwrites the generator's state with a value previously
// obtained from State.
func (r *RNG) SetState(s uint64) { r.state = s }

// mix64 is the SplitMix64 output function.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += golden
	return mix64(r.state)
}

// Split derives an independent child generator. The child's stream is a
// deterministic function of the parent's current state and the supplied
// stream index, so Split(i) is stable regardless of how many values the
// parent draws afterwards.
func (r *RNG) Split(stream uint64) *RNG {
	// Hash the parent state together with the stream index through two
	// rounds of the output function to decorrelate child sequences.
	h := mix64(r.state ^ mix64(stream*golden+1))
	return &RNG{state: h}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded values.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mulHi(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mulHi returns the high and low 64 bits of a*b where the low word is the
// remainder channel used for rejection sampling.
func mulHi(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Int63 returns a non-negative 63-bit pseudo-random integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exponential samples Exp(rate): mean 1/rate. It panics if rate <= 0.
//
// MPX clustering draws per-center shifts δ_v ~ Exp(β) from this method.
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: Exponential with non-positive rate")
	}
	// Inverse CDF on (0,1]; 1-Float64() avoids log(0).
	u := 1 - r.Float64()
	return -math.Log(u) / rate
}

// Geometric samples the number of failures before the first success of a
// Bernoulli(p) sequence (support {0,1,2,...}). It panics unless 0 < p <= 1.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := 1 - r.Float64()
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Perm returns a uniform random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs uniformly in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Normal samples a standard normal via the Marsaglia polar method.
func (r *RNG) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
