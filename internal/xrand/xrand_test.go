package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 1000", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(0)
	c2 := parent.Split(1)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first draw")
	}
	// Split must be stable: same stream from same parent state.
	parent2 := New(7)
	d1 := parent2.Split(0)
	if got, want := d1.Uint64(), New(7).Split(0).Uint64(); got != want {
		t.Fatalf("split not stable: %d vs %d", got, want)
	}
}

func TestSplitStableAcrossParentDraws(t *testing.T) {
	p := New(9)
	before := p.Split(5).Uint64()
	p2 := New(9)
	p2.Split(3) // a different split does not change parent state
	after := p2.Split(5).Uint64()
	if before != after {
		t.Fatal("Split should not mutate parent state")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d too far from %v", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	r := New(13)
	const p, draws = 0.3, 200000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) empirical mean %v", p, got)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(17)
	for _, rate := range []float64{0.5, 1, 4} {
		const draws = 200000
		sum := 0.0
		for i := 0; i < draws; i++ {
			v := r.Exponential(rate)
			if v < 0 {
				t.Fatalf("negative exponential sample %v", v)
			}
			sum += v
		}
		mean := sum / draws
		want := 1 / rate
		if math.Abs(mean-want) > 0.05*want+0.01 {
			t.Errorf("Exp(%v) mean %v, want ~%v", rate, mean, want)
		}
	}
}

func TestExponentialMemoryless(t *testing.T) {
	// P(X > 2/rate) should be about e^-2.
	r := New(23)
	const rate, draws = 2.0, 100000
	over := 0
	for i := 0; i < draws; i++ {
		if r.Exponential(rate) > 2/rate {
			over++
		}
	}
	got := float64(over) / draws
	want := math.Exp(-2)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("tail prob %v, want ~%v", got, want)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(29)
	const p, draws = 0.25, 100000
	sum := 0
	for i := 0; i < draws; i++ {
		g := r.Geometric(p)
		if g < 0 {
			t.Fatalf("negative geometric %d", g)
		}
		sum += g
	}
	mean := float64(sum) / draws
	want := (1 - p) / p
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric(%v) mean %v, want ~%v", p, mean, want)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(31)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("first element %d count %d, want ~%v", i, c, want)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(37)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v, want ~1", variance)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(41)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset sum: %d vs %d", got, sum)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestExponentialPanicsOnNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Exponential(0)")
		}
	}()
	New(1).Exponential(0)
}
