package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chaos"
)

func key(b byte) string {
	return strings.Repeat(string([]byte{'a' + b%6}), 64)
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k, v := key(0), []byte(`{"result":42}`)
	if err := s.Put(k, v); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(k)
	if err != nil || !ok {
		t.Fatalf("Get = %v %v %v", got, ok, err)
	}
	if string(got) != string(v) {
		t.Fatalf("payload %q, want %q", got, v)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d %v", n, err)
	}
	c := s.Counters()
	if c.Hits != 1 || c.Misses != 0 || c.Puts != 1 || c.Quarantined != 0 {
		t.Fatalf("counters %+v", c)
	}
}

func TestMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key(1))
	if err != nil || ok || got != nil {
		t.Fatalf("Get on empty store = %v %v %v", got, ok, err)
	}
	if c := s.Counters(); c.Misses != 1 {
		t.Fatalf("counters %+v", c)
	}
}

// TestReopen: durability across restart — the property the whole package
// exists for.
func TestReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k, v := key(2), []byte("persisted")
	if err := s.Put(k, v); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := s2.Get(k)
	if err != nil || !ok || string(got) != string(v) {
		t.Fatalf("after reopen: %q %v %v", got, ok, err)
	}
}

func TestPutIdempotent(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := key(3)
	for i := 0; i < 3; i++ {
		if err := s.Put(k, []byte("same bytes")); err != nil {
			t.Fatal(err)
		}
	}
	if c := s.Counters(); c.Puts != 1 {
		t.Fatalf("puts = %d, want 1 (re-puts are no-ops)", c.Puts)
	}
}

func TestCorruptEntryQuarantined(t *testing.T) {
	for name, corrupt := range map[string]func([]byte) []byte{
		"flipped payload byte": func(raw []byte) []byte {
			out := append([]byte(nil), raw...)
			out[len(out)-1] ^= 0xff
			return out
		},
		"truncated": func(raw []byte) []byte { return raw[:len(raw)/2] },
		"no header": func([]byte) []byte { return []byte("garbage with no newline") },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			k := key(4)
			if err := s.Put(k, []byte("precious result")); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, "results", k)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			got, ok, err := s.Get(k)
			if err != nil || ok || got != nil {
				t.Fatalf("corrupt Get = %v %v %v, want miss", got, ok, err)
			}
			if _, err := os.Stat(filepath.Join(dir, "quarantine", k)); err != nil {
				t.Fatalf("corrupt entry not quarantined: %v", err)
			}
			if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("corrupt entry still served from results/: %v", err)
			}
			if c := s.Counters(); c.Quarantined != 1 {
				t.Fatalf("counters %+v", c)
			}
			// Recomputation repopulates the slot.
			if err := s.Put(k, []byte("precious result")); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := s.Get(k); !ok {
				t.Fatal("repopulated entry not served")
			}
		})
	}
}

func TestInvalidKeys(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"", "../../etc/passwd", "ABCDEF", "deadbeef/x", strings.Repeat("a", 200)} {
		if err := s.Put(k, []byte("x")); err == nil {
			t.Errorf("Put accepted key %q", k)
		}
		if _, _, err := s.Get(k); err == nil {
			t.Errorf("Get accepted key %q", k)
		}
	}
}

func TestStagingDebrisSwept(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	debris := filepath.Join(dir, "tmp", "deadbeef.12345")
	if err := os.WriteFile(debris, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(debris); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("staging debris survived reopen: %v", err)
	}
}

func TestFaultInjection(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	diskErr := errors.New("disk on fire")
	f := chaos.New()
	f.Arm("store.put", 0, 1, diskErr)
	f.Arm("store.get", 0, 1, diskErr)
	s.SetFaults(f)
	k := key(5)
	if err := s.Put(k, []byte("x")); !errors.Is(err, diskErr) {
		t.Fatalf("Put err = %v, want injected fault", err)
	}
	if _, _, err := s.Get(k); !errors.Is(err, diskErr) {
		t.Fatalf("Get err = %v, want injected fault", err)
	}
	// Window exhausted: the store works again.
	if err := s.Put(k, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(k); err != nil || !ok {
		t.Fatalf("post-fault Get = %v %v", ok, err)
	}
}
