// Package store is the durable tier of the serve subsystem's result cache
// (DESIGN.md §8): a disk-backed content-addressed store mapping spec hashes
// to marshaled result bytes. Because a result is a pure function of its
// canonical spec (DESIGN.md §3–§6), entries are immutable and never stale —
// a restarted server answers any previously computed spec byte-identically
// from here, with no invalidation protocol.
//
// Durability discipline: writes land in a tmp/ staging file, are fsynced,
// and are renamed into place, then the directory is fsynced — so a crash at
// any point leaves either no entry or a complete one, never a torn file.
// Every entry carries a checksum header that reads verify; an entry that
// fails verification (torn by a non-atomic filesystem, bit-rotted, or
// hand-edited) is moved to quarantine/ and reported as a miss, so corruption
// degrades to recomputation instead of serving garbage.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
)

// Entry file layout: a one-line header followed by the raw payload.
//
//	v1 <hex sha256 of payload>\n<payload>
//
// The header names the format version and the payload checksum; the file
// name is the content address (the spec hash), which is the lookup key, not
// the payload digest.
const headerPrefix = "v1 "

// Store is a content-addressed result store rooted at one directory. All
// methods are safe for concurrent use. The zero value is not usable; call
// Open.
type Store struct {
	dir    string
	faults *chaos.Faults
	met    Metrics

	mu          sync.Mutex
	hits        uint64
	misses      uint64
	puts        uint64
	quarantined uint64
}

// Metrics is the store's optional instrumentation hook set (DESIGN.md §10).
// Every field is nil-safe: the zero value disables that instrument, and an
// uninstrumented store pays only nil checks. Latencies are in seconds.
type Metrics struct {
	// GetSeconds observes every Get, misses and quarantines included.
	GetSeconds *obs.Histogram
	// PutSeconds observes every completed put (both Put and PutRelaxed),
	// staging + checksum + rename + any fsyncs.
	PutSeconds *obs.Histogram
	// FsyncSeconds observes each file/directory fsync a durable Put issues.
	FsyncSeconds *obs.Histogram
	// Quarantined counts entries moved to quarantine/ on checksum failure.
	Quarantined *obs.Counter
}

// SetMetrics installs the instrumentation hooks. Call before serving
// traffic, like SetFaults.
func (s *Store) SetMetrics(m Metrics) { s.met = m }

// Counters is a snapshot of the store's lifetime activity.
type Counters struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Puts        uint64 `json:"puts"`
	Quarantined uint64 `json:"quarantined"`
}

// Open opens (creating if needed) a store rooted at dir, laying out the
// results/, tmp/, and quarantine/ subdirectories and sweeping any staging
// debris a previous crash left in tmp/ — staged-but-unrenamed writes are by
// construction not yet entries, so removing them is always safe.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"results", "tmp", "quarantine"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	tmp := filepath.Join(dir, "tmp")
	entries, err := os.ReadDir(tmp)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	for _, e := range entries {
		if err := os.Remove(filepath.Join(tmp, e.Name())); err != nil {
			return nil, fmt.Errorf("store: sweeping stale staging file: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// SetFaults installs a chaos fault registry consulted at the "store.put" and
// "store.get" sites, simulating disk I/O failure. Call before serving; nil
// (the default) disables injection.
func (s *Store) SetFaults(f *chaos.Faults) { s.faults = f }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validKey rejects keys that are not plain lowercase-hex content hashes —
// anything else could escape the results directory or collide with staging
// conventions.
func validKey(key string) error {
	if len(key) == 0 || len(key) > 128 {
		return fmt.Errorf("store: invalid key %q", key)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("store: invalid key %q", key)
		}
	}
	return nil
}

// Put durably stores data under key. It is idempotent: re-putting an
// existing key is a no-op (the determinism contract makes the value
// identical). On return the entry survives a crash of the process or the
// machine (modulo the filesystem honoring fsync).
func (s *Store) Put(key string, data []byte) error {
	return s.put(key, data, true)
}

// PutRelaxed stores data under key with the same atomicity (stage in tmp/,
// rename into place) and the same checksum framing as Put, but without
// fsync. It is for recompute-hint keyspaces — prefix snapshots (DESIGN.md
// §9) — whose loss costs a cold recomputation, never correctness: a process
// crash cannot tear the entry (rename is atomic in the kernel's namespace),
// and a machine crash that corrupts it is caught by the checksum on read
// and quarantined. Skipping the two flushes keeps snapshot publication off
// the hot path's latency budget.
func (s *Store) PutRelaxed(key string, data []byte) error {
	return s.put(key, data, false)
}

func (s *Store) put(key string, data []byte, durable bool) error {
	if err := validKey(key); err != nil {
		return err
	}
	if s.met.PutSeconds != nil {
		defer s.met.PutSeconds.ObserveSince(time.Now())
	}
	if err := s.faults.Check("store.put"); err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	final := filepath.Join(s.dir, "results", key)
	if _, err := os.Stat(final); err == nil {
		return nil
	}
	f, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), key+".*")
	if err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	staged := f.Name()
	cleanup := func() { f.Close(); os.Remove(staged) }
	sum := sha256.Sum256(data)
	if _, err := fmt.Fprintf(f, "%s%s\n", headerPrefix, hex.EncodeToString(sum[:])); err != nil {
		cleanup()
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if _, err := f.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if durable {
		t0 := time.Now()
		if err := f.Sync(); err != nil {
			cleanup()
			return fmt.Errorf("store: put %s: %w", key, err)
		}
		if s.met.FsyncSeconds != nil {
			s.met.FsyncSeconds.ObserveSince(t0)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(staged)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if err := os.Rename(staged, final); err != nil {
		os.Remove(staged)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if durable {
		t0 := time.Now()
		if err := syncDir(filepath.Join(s.dir, "results")); err != nil {
			return fmt.Errorf("store: put %s: %w", key, err)
		}
		if s.met.FsyncSeconds != nil {
			s.met.FsyncSeconds.ObserveSince(t0)
		}
	}
	s.mu.Lock()
	s.puts++
	s.mu.Unlock()
	return nil
}

// Get returns the payload stored under key. A missing entry is (nil, false,
// nil). An entry that fails checksum verification is moved to quarantine/
// and reported as a miss — the caller recomputes, and the bad bytes are
// preserved for inspection instead of being served or silently deleted.
// A non-nil error means the read itself failed (I/O error, injected fault).
func (s *Store) Get(key string) ([]byte, bool, error) {
	if err := validKey(key); err != nil {
		return nil, false, err
	}
	if s.met.GetSeconds != nil {
		defer s.met.GetSeconds.ObserveSince(time.Now())
	}
	if err := s.faults.Check("store.get"); err != nil {
		return nil, false, fmt.Errorf("store: get %s: %w", key, err)
	}
	final := filepath.Join(s.dir, "results", key)
	raw, err := os.ReadFile(final)
	if errors.Is(err, fs.ErrNotExist) {
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: get %s: %w", key, err)
	}
	payload, ok := parseEntry(raw)
	if !ok {
		// Quarantine rather than delete: the entry is evidence. A concurrent
		// Get may have already moved it; losing that race is fine.
		if err := os.Rename(final, filepath.Join(s.dir, "quarantine", key)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return nil, false, fmt.Errorf("store: quarantining corrupt entry %s: %w", key, err)
		}
		s.mu.Lock()
		s.quarantined++
		s.misses++
		s.mu.Unlock()
		if s.met.Quarantined != nil {
			s.met.Quarantined.Inc()
		}
		return nil, false, nil
	}
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	return payload, true, nil
}

// parseEntry splits and verifies one entry file, returning the payload and
// whether the checksum header matched.
func parseEntry(raw []byte) ([]byte, bool) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, false
	}
	header := string(raw[:nl])
	payload := raw[nl+1:]
	if len(header) != len(headerPrefix)+2*sha256.Size || header[:len(headerPrefix)] != headerPrefix {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if header[len(headerPrefix):] != hex.EncodeToString(sum[:]) {
		return nil, false
	}
	return payload, true
}

// Len returns the number of durable entries.
func (s *Store) Len() (int, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "results"))
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	return len(entries), nil
}

// Counters returns a snapshot of the lifetime activity counters.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Counters{Hits: s.hits, Misses: s.misses, Puts: s.puts, Quarantined: s.quarantined}
}

// syncDir fsyncs a directory, making a completed rename durable.
func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
