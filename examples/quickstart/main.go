// Quickstart: simulate the paper's three algorithms — maximal independent
// set, broadcast, and leader election — on a small unit disk graph, printing
// what each one did.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/mis"
	"repro/internal/xrand"
)

func main() {
	const seed = 42

	// Build a connected unit disk graph: 120 wireless sensors scattered
	// uniformly, edges between pairs within unit range.
	rng := xrand.New(seed)
	g, _, err := gen.ConnectedUDG(120, 8, 60, rng)
	if err != nil {
		log.Fatal(err)
	}
	d, err := g.Diameter()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: n=%d nodes, m=%d links, diameter D=%d\n", g.N(), g.M(), d)

	// 1. Maximal independent set (Algorithm 7): the first MIS algorithm for
	//    general-graph radio networks, O(log³ n) time-steps (Theorem 14).
	out, err := mis.Run(g, mis.Params{}, seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := mis.Verify(g, out.MIS); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mis: %d nodes elected in %d radio time-steps (valid maximal independent set)\n",
		len(out.MIS), out.Steps)

	// 2. Broadcast (Theorem 7): node 0 floods a message via Compete({0})
	//    with MIS-restricted MPX clusterings.
	bres, err := core.Broadcast(g, 0, core.Params{}, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("broadcast: all %d nodes informed after %d main-loop steps "+
		"(MIS %d + charged setup %d ⇒ total %d)\n",
		g.N(), bres.CompleteStep, bres.MISSteps, bres.ChargedSetupSteps, bres.TotalSteps)

	// 3. Leader election (Algorithm 3): Θ(log n / n) self-nomination plus
	//    Compete over the candidates.
	er, err := core.LeaderElection(g, core.Params{}, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("election: %d candidates competed, leader ID %d agreed after %d steps\n",
		er.Candidates, er.LeaderID, er.CompleteStep)
}
