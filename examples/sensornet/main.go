// Sensornet: the workload the paper's geometric strand is motivated by — a
// dense wireless sensor deployment (unit disk graph) where a sink node must
// disseminate a firmware-update announcement to every sensor.
//
// The example contrasts the paper's independence-number-parametrized
// broadcast (O(D + polylog n) on growth-bounded graphs, Corollary 9) with
// the classic BGI Decay broadcast (O(D log n + log² n)), on the same
// deployments with the same seeds, across increasing field sizes.
//
// Run with:
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/xrand"
)

func main() {
	fmt.Println("firmware dissemination over unit-disk sensor fields")
	fmt.Println("(paper = Compete with MIS clustering; decay = BGI baseline)")
	fmt.Println()
	fmt.Printf("%8s %6s %6s %13s %10s %13s %10s\n",
		"sensors", "D", "α̂", "paper steps", "per hop", "decay steps", "per hop")
	for _, n := range []int{100, 200, 400} {
		if err := compareOnce(n, uint64(n)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println()
	fmt.Println("The paper's per-hop cost is a constant set by the clustering schedules,")
	fmt.Println("while Decay pays Θ(log n) per hop — constant here at small n, but growing")
	fmt.Println("with the deployment. See EXPERIMENTS.md (E7/E8) for the crossover study.")
}

func compareOnce(n int, seed uint64) error {
	rng := xrand.New(seed)
	g, _, err := gen.ConnectedUDG(n, 8, 60, rng)
	if err != nil {
		return err
	}
	d, err := g.Diameter()
	if err != nil {
		return err
	}
	alpha := g.IndependenceLowerBound(4, rng)

	paper, err := core.Broadcast(g, 0, core.Params{}, seed)
	if err != nil {
		return err
	}
	decay, err := baseline.DecayBroadcast(g, 0, 0, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%8d %6d %6d %13s %10s %13s %10s\n",
		g.N(), d, alpha,
		steps(paper.CompleteStep), perHop(paper.CompleteStep, d),
		steps(decay.CompleteStep), perHop(decay.CompleteStep, d))
	return nil
}

func perHop(s, d int) string {
	if s < 0 || d <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(s)/float64(d))
}

func steps(s int) string {
	if s < 0 {
		return "budget hit"
	}
	return fmt.Sprintf("%d", s)
}
