// Leaderelection: ad-hoc network bootstrap. A fleet of devices with no
// pre-assigned identities or coordinator wakes up on a shared channel and
// must self-organize: elect a leader (Algorithm 3 / Theorem 8) that later
// protocols can use as a coordinator.
//
// The example runs the election on three very different topologies — a
// geometric mesh (unit disk), a sparse random general graph, and an
// adversarial clique chain — and verifies the election invariants the
// theorem promises: completion, and agreement on a single candidate ID.
//
// Run with:
//
//	go run ./examples/leaderelection
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

func main() {
	rng := xrand.New(7)
	udg, _, err := gen.ConnectedUDG(150, 8, 60, rng)
	if err != nil {
		log.Fatal(err)
	}
	gnp, err := gen.GNPConnected(120, 0.06, 60, rng)
	if err != nil {
		log.Fatal(err)
	}
	topologies := []struct {
		name string
		g    *graph.Graph
	}{
		{"unit-disk mesh", udg},
		{"sparse random", gnp},
		{"clique chain", gen.CliqueChain(8, 10)},
	}
	for _, tc := range topologies {
		if err := electAndReport(tc.name, tc.g); err != nil {
			log.Fatal(err)
		}
	}
}

func electAndReport(name string, g *graph.Graph) error {
	d, err := g.Diameter()
	if err != nil {
		return err
	}
	er, err := core.LeaderElection(g, core.Params{}, 99)
	if err != nil {
		return err
	}
	status := "AGREED"
	if er.CompleteStep < 0 {
		status = "INCOMPLETE (budget exhausted)"
	}
	fmt.Printf("%-16s n=%-4d D=%-3d candidates=%-3d leader=%-12d steps=%-6d %s\n",
		name, g.N(), d, er.Candidates, er.LeaderID, er.CompleteStep, status)
	return nil
}
