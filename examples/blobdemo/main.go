// Blobdemo: watch the paper's central mechanism in isolation.
//
// A "blob lollipop" is a path with a large clique (the blob) attached at the
// far end. Under Miller–Peng–Xu clustering with *all* nodes as candidate
// centers (the CD21 predecessor), the blob contributes M candidates whose
// largest exponential shift grows like ln(M)/β — so the far-away blob
// captures the tail tip and the expected distance to the cluster center
// scales with log_D n. Restricting candidates to a maximal independent set
// (the paper's Partition(β, MIS), §2.2) collapses the blob to a single
// candidate, pinning the expected distance at the Theorem 2 level
// O(log_D α / β) no matter how big the blob grows.
//
// Run with:
//
//	go run ./examples/blobdemo
package main

import (
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/internal/mpx"
	"repro/internal/xrand"
)

func main() {
	const (
		tail   = 48
		beta   = 1.0 / 8
		trials = 2000
	)
	rng := xrand.New(2023)
	fmt.Println("blob lollipop: tail of 48 nodes, clique blob at the far end")
	fmt.Printf("Partition(β=1/8) measured from the tail tip, %d clusterings per row\n\n", trials)
	fmt.Printf("%10s %8s %18s %18s %8s\n", "blob size", "n", "E[dist] MIS ctrs", "E[dist] all ctrs", "ratio")

	for _, m := range []int{8, 32, 128, 512, 2048} {
		g := gen.Lollipop(m, tail)
		tip := g.N() - 1
		misSet := g.GreedyMinDegreeMIS()
		all := make([]int, g.N())
		for i := range all {
			all[i] = i
		}
		dMIS, err := mpx.MeanCenterDistance(g, misSet, tip, beta, trials, rng)
		if err != nil {
			log.Fatal(err)
		}
		dAll, err := mpx.MeanCenterDistance(g, all, tip, beta, trials, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d %8d %18.2f %18.2f %8.2f\n", m, g.N(), dMIS, dAll, dAll/dMIS)
	}

	fmt.Println()
	fmt.Println("The MIS column stays flat (the blob is one candidate: α-mass 1);")
	fmt.Println("the all-centers column climbs toward the tail length as ln(blob)/β")
	fmt.Println("overtakes the tip's local candidates — the log_D n vs log_D α gap")
	fmt.Println("that Theorem 2 closes.")
}
