// Misfirefly: clustering a field of devices by electing cluster heads with
// the paper's Radio MIS (Algorithm 7) — the standard first step for duty
// cycling and spatial TDMA in sensor networks. An MIS is exactly a set of
// cluster heads such that no two heads interfere (independence) and every
// device has a head in range (maximality/domination).
//
// The example runs Radio MIS on a unit disk deployment, prints an ASCII map
// of heads vs members, and reports per-round progress of the algorithm
// (marked nodes, joins, removals) via the observer hook.
//
// Run with:
//
//	go run ./examples/misfirefly
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/gen"
	"repro/internal/mis"
	"repro/internal/xrand"
)

func main() {
	const n = 140
	const seed = 11
	rng := xrand.New(seed)
	side := math.Sqrt(float64(n) * math.Pi / 8)
	pts := gen.UniformPoints(n, 2, side, rng)
	g := gen.UDG(pts, 1)

	var progress []string
	params := mis.Params{Observer: func(round int, states []mis.NodeState) {
		alive, heads := 0, 0
		for _, s := range states {
			if s.Alive {
				alive++
			}
			if s.InMIS {
				heads++
			}
		}
		if round < 8 || alive == 0 {
			progress = append(progress,
				fmt.Sprintf("  round %2d: %3d undecided, %3d heads", round, alive, heads))
		}
	}}
	out, err := mis.Run(g, params, seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := mis.Verify(g, out.MIS); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("radio MIS on a %d-sensor field: %d cluster heads in %d time-steps\n\n",
		n, len(out.MIS), out.Steps)
	for _, line := range progress {
		fmt.Println(line)
	}

	// ASCII map: '#' = cluster head, '.' = member, ' ' = empty cell.
	inMIS := make(map[int]bool, len(out.MIS))
	for _, v := range out.MIS {
		inMIS[v] = true
	}
	const cells = 28
	grid := make([][]byte, cells)
	for r := range grid {
		grid[r] = make([]byte, cells)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for v, p := range pts {
		r := int(p[1] / side * (cells - 1))
		c := int(p[0] / side * (cells - 1))
		if inMIS[v] {
			grid[r][c] = '#'
		} else if grid[r][c] != '#' {
			grid[r][c] = '.'
		}
	}
	fmt.Println("\nfield map (# = cluster head, . = member):")
	for _, row := range grid {
		fmt.Println("  " + string(row))
	}
}
